//! Initial database population (the DBT2 "datagen" phase).
//!
//! Loads the nine tables at the configured scale: items first, then per
//! warehouse its stock, districts, customers (with one history row each)
//! and the initial order backlog — the most recent third of initial
//! orders per district is undelivered (has NEW_ORDER rows), as in the
//! specification.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sias_common::SiasResult;
use sias_txn::MvccEngine;

use crate::config::{Tables, TpccConfig};
use crate::keys;
use crate::random::uniform;
use crate::schema::*;

/// Loads a full TPC-C database into `engine`; returns the table ids.
pub fn load<E: MvccEngine + ?Sized>(engine: &E, cfg: &TpccConfig) -> SiasResult<Tables> {
    let tables = Tables::create(engine);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // ITEM (shared catalogue).
    let t = engine.begin();
    for i in 1..=cfg.items {
        let item = Item { id: i, price: uniform(&mut rng, 100, 10_000) as u32 };
        engine.insert(&t, tables.item, keys::item(i), &item.encode())?;
    }
    engine.commit(t)?;

    for w in 1..=cfg.warehouses {
        let t = engine.begin();
        // W_YTD must equal the sum of its districts' D_YTD (consistency
        // condition C5 / spec §3.3.2.1).
        let wh = Warehouse {
            id: w,
            ytd: 3_000_000 * cfg.districts_per_warehouse as i64,
            tax: uniform(&mut rng, 0, 2000) as u32,
        };
        engine.insert(&t, tables.warehouse, keys::warehouse(w), &wh.encode())?;

        // STOCK: one row per (warehouse, item).
        for i in 1..=cfg.items {
            let s = Stock {
                w_id: w,
                i_id: i,
                quantity: uniform(&mut rng, 10, 100) as i32,
                ytd: 0,
                order_cnt: 0,
                remote_cnt: 0,
                data_len: cfg.stock_data_len,
            };
            engine.insert(&t, tables.stock, keys::stock(w, i), &s.encode())?;
        }

        for d in 1..=cfg.districts_per_warehouse {
            let dist = District {
                w_id: w,
                d_id: d,
                next_o_id: cfg.initial_orders_per_district + 1,
                ytd: 3_000_000,
                tax: uniform(&mut rng, 0, 2000) as u32,
            };
            engine.insert(&t, tables.district, keys::district(w, d), &dist.encode())?;

            for c in 1..=cfg.customers_per_district {
                let cust = Customer {
                    w_id: w,
                    d_id: d,
                    c_id: c,
                    balance: -1000,
                    ytd_payment: 1000,
                    payment_cnt: 1,
                    delivery_cnt: 0,
                    data_len: cfg.customer_data_len,
                };
                engine.insert(&t, tables.customer, keys::customer(w, d, c), &cust.encode())?;
                let h = History { w_id: w, d_id: d, c_id: c, amount: 1000, date: 0 };
                engine.insert(&t, tables.history, next_history_key(), &h.encode())?;
            }

            // Initial orders: a permutation of customers, the newest
            // third undelivered.
            let undelivered_from =
                cfg.initial_orders_per_district - cfg.initial_orders_per_district / 3 + 1;
            for o in 1..=cfg.initial_orders_per_district {
                let c_id = uniform(&mut rng, 1, cfg.customers_per_district as u64) as u32;
                let ol_cnt = uniform(&mut rng, 5, 15) as u32;
                let delivered = o < undelivered_from;
                let order = Order {
                    w_id: w,
                    d_id: d,
                    o_id: o,
                    c_id,
                    entry_d: 0,
                    carrier_id: if delivered { uniform(&mut rng, 1, 10) as u32 } else { 0 },
                    ol_cnt,
                };
                engine.insert(&t, tables.orders, keys::order(w, d, o), &order.encode())?;
                if !delivered {
                    let no = NewOrderRow { w_id: w, d_id: d, o_id: o };
                    engine.insert(&t, tables.new_order, keys::order(w, d, o), &no.encode())?;
                }
                for l in 1..=ol_cnt {
                    let ol = OrderLine {
                        i_id: uniform(&mut rng, 1, cfg.items as u64) as u32,
                        supply_w_id: w,
                        quantity: 5,
                        amount: if delivered { uniform(&mut rng, 1, 999_999) as u32 } else { 0 },
                        delivery_d: if delivered { 1 } else { 0 },
                    };
                    engine.insert(
                        &t,
                        tables.order_line,
                        keys::order_line(w, d, o, l),
                        &ol.encode(),
                    )?;
                }
            }
        }
        engine.commit(t)?;
    }
    Ok(tables)
}

use std::sync::atomic::{AtomicU64, Ordering};

static HISTORY_SEQ: AtomicU64 = AtomicU64::new(0);

/// Allocates a globally-unique HISTORY key (the spec's history table has
/// no primary key; a running sequence stands in).
pub fn next_history_key() -> u64 {
    HISTORY_SEQ.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sias_core::SiasDb;
    use sias_si::SiDb;
    use sias_storage::StorageConfig;

    fn check_load<E: MvccEngine>(engine: &E) {
        let cfg = TpccConfig::tiny();
        let tables = load(engine, &cfg).unwrap();
        let t = engine.begin();
        // Cardinalities.
        assert_eq!(engine.scan_all(&t, tables.warehouse).unwrap().len(), 2);
        assert_eq!(engine.scan_all(&t, tables.district).unwrap().len(), 4);
        assert_eq!(engine.scan_all(&t, tables.customer).unwrap().len(), 40);
        assert_eq!(engine.scan_all(&t, tables.item).unwrap().len(), 50);
        assert_eq!(engine.scan_all(&t, tables.stock).unwrap().len(), 100);
        assert_eq!(engine.scan_all(&t, tables.orders).unwrap().len(), 20);
        // A third of 5 initial orders per district is undelivered.
        assert_eq!(engine.scan_all(&t, tables.new_order).unwrap().len(), 4);
        // District next_o_id set past the backlog.
        let d = District::decode(
            &engine.get(&t, tables.district, keys::district(1, 1)).unwrap().unwrap(),
        )
        .unwrap();
        assert_eq!(d.next_o_id, 6);
        // Order lines match the per-order counts.
        let orders = engine.scan_all(&t, tables.orders).unwrap();
        let ol_total: u32 = orders.iter().map(|(_, o)| Order::decode(o).unwrap().ol_cnt).sum();
        assert_eq!(engine.scan_all(&t, tables.order_line).unwrap().len() as u32, ol_total);
        engine.commit(t).unwrap();
    }

    #[test]
    fn loads_into_sias() {
        let db = SiasDb::open(StorageConfig::in_memory());
        check_load(&db);
    }

    #[test]
    fn loads_into_si_baseline() {
        let db = SiDb::open(StorageConfig::in_memory());
        check_load(&db);
    }
}
