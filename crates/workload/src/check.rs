//! Consistency and isolation checking.
//!
//! Two independent checkers share the [`Violation`] report type:
//!
//! 1. **TPC-C conditions** ([`check_consistency`]) — a subset of the
//!    specification's §3.3.2 consistency requirements, checkable against
//!    any engine. The differential tests run them after benchmark
//!    activity to establish that both engines maintain a consistent
//!    database — which is what makes the performance comparison
//!    meaningful.
//! 2. **Black-box SI-anomaly checking** ([`check_anomalies`],
//!    [`check_durability`]) — in the spirit of Huang et al.'s black-box
//!    SI checkers and the anomaly taxonomy of Ports & Grittner: the
//!    chaos harness records a client-side [`History`] of tagged reads
//!    and writes plus per-transaction outcomes, and these functions
//!    detect G0 (dirty write), G1a (aborted read), G1b (intermediate
//!    read), lost update, and — across a crash — acknowledged-commit
//!    durability and prefix consistency, without looking inside the
//!    engine.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use sias_common::{SiasResult, Xid};
use sias_txn::MvccEngine;

use crate::config::{Tables, TpccConfig};
use crate::keys;
use crate::schema::*;

/// A failed consistency condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which condition (e.g. "C1").
    pub condition: &'static str,
    /// Human-readable description.
    pub detail: String,
}

/// Runs the consistency conditions; returns all violations found.
pub fn check_consistency<E: MvccEngine + ?Sized>(
    engine: &E,
    tables: &Tables,
    cfg: &TpccConfig,
) -> SiasResult<Vec<Violation>> {
    let mut violations = Vec::new();
    let t = engine.begin();

    for w in 1..=cfg.warehouses {
        let mut district_ytd_sum = 0i64;
        for d in 1..=cfg.districts_per_warehouse {
            let dk = keys::district(w, d);
            let Some(bytes) = engine.get(&t, tables.district, dk)? else {
                violations.push(Violation {
                    condition: "C0",
                    detail: format!("district ({w},{d}) missing"),
                });
                continue;
            };
            let dist = District::decode(&bytes)?;
            district_ytd_sum += dist.ytd;

            // C1: d_next_o_id − 1 == max(o_id) of the district.
            let orders = engine.scan_range(
                &t,
                tables.orders,
                keys::order(w, d, 0),
                keys::order(w, d, u32::MAX >> 8),
            )?;
            let max_o = orders
                .iter()
                .map(|(_, b)| Order::decode(b).map(|o| o.o_id))
                .collect::<SiasResult<Vec<_>>>()?
                .into_iter()
                .max()
                .unwrap_or(0);
            if dist.next_o_id != max_o + 1 {
                violations.push(Violation {
                    condition: "C1",
                    detail: format!(
                        "district ({w},{d}): next_o_id {} but max(o_id) {}",
                        dist.next_o_id, max_o
                    ),
                });
            }

            // C2: every NEW_ORDER row refers to an existing, undelivered
            // order.
            let pending = engine.scan_range(
                &t,
                tables.new_order,
                keys::order(w, d, 0),
                keys::order(w, d, u32::MAX >> 8),
            )?;
            for (no_key, bytes) in &pending {
                let no = NewOrderRow::decode(bytes)?;
                match engine.get(&t, tables.orders, *no_key)? {
                    Some(ob) => {
                        let o = Order::decode(&ob)?;
                        if o.carrier_id != 0 {
                            violations.push(Violation {
                                condition: "C2",
                                detail: format!(
                                    "new_order ({w},{d},{}) already delivered",
                                    no.o_id
                                ),
                            });
                        }
                    }
                    None => violations.push(Violation {
                        condition: "C2",
                        detail: format!("new_order ({w},{d},{}) has no order", no.o_id),
                    }),
                }
            }

            // C3: every order's ol_cnt equals its actual line count, and
            // delivered orders have delivered lines.
            for (okey, bytes) in &orders {
                let o = Order::decode(bytes)?;
                let lines =
                    engine.scan_range(&t, tables.order_line, okey << 4, (okey << 4) | 15)?;
                if lines.len() as u32 != o.ol_cnt {
                    violations.push(Violation {
                        condition: "C3",
                        detail: format!(
                            "order ({w},{d},{}): ol_cnt {} but {} lines",
                            o.o_id,
                            o.ol_cnt,
                            lines.len()
                        ),
                    });
                }
                if o.carrier_id != 0 {
                    for (_, lb) in &lines {
                        if OrderLine::decode(lb)?.delivery_d == 0 {
                            violations.push(Violation {
                                condition: "C4",
                                detail: format!(
                                    "delivered order ({w},{d},{}) has undelivered line",
                                    o.o_id
                                ),
                            });
                        }
                    }
                }
            }
        }
        // C5: warehouse ytd == sum of its districts' ytd (both start with
        // matching constants and Payment adds to both).
        let wk = keys::warehouse(w);
        if let Some(bytes) = engine.get(&t, tables.warehouse, wk)? {
            let wh = Warehouse::decode(&bytes)?;
            if wh.ytd != district_ytd_sum {
                violations.push(Violation {
                    condition: "C5",
                    detail: format!(
                        "warehouse {w}: ytd {} != sum(district ytd) {}",
                        wh.ytd, district_ytd_sum
                    ),
                });
            }
        }
    }
    engine.commit(t)?;
    Ok(violations)
}

// ---------------------------------------------------------------------------
// Black-box SI-anomaly checking
// ---------------------------------------------------------------------------

/// Uniquely identifies one write in a chaos history: the writing
/// transaction plus its per-transaction operation counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WriteTag {
    /// The transaction that produced the write.
    pub xid: Xid,
    /// Per-transaction operation counter (distinguishes multiple writes
    /// by the same transaction to the same key).
    pub seq: u32,
}

/// Payload length of a tagged chaos write: key, xid, seq, checksum.
pub const TAG_PAYLOAD_LEN: usize = 8 + 8 + 4 + 4;

fn tag_checksum(key: u64, xid: u64, seq: u32) -> u32 {
    // splitmix64 finalizer over the three fields — enough to reject the
    // single-bit flips the fault injector produces.
    let mut z = key
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(xid.rotate_left(17))
        .wrapping_add(u64::from(seq).rotate_left(43));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (z ^ (z >> 31)) as u32
}

impl WriteTag {
    /// Encodes a self-describing, checksummed payload for a chaos write.
    pub fn encode_payload(&self, key: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(TAG_PAYLOAD_LEN);
        out.extend_from_slice(&key.to_le_bytes());
        out.extend_from_slice(&self.xid.0.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&tag_checksum(key, self.xid.0, self.seq).to_le_bytes());
        out
    }

    /// Decodes a payload written by [`WriteTag::encode_payload`]. Returns
    /// `None` on length or checksum mismatch, so bit-rot injected below
    /// the engine surfaces as a detected read failure rather than a
    /// spurious anomaly report.
    pub fn decode_payload(buf: &[u8]) -> Option<(u64, WriteTag)> {
        if buf.len() != TAG_PAYLOAD_LEN {
            return None;
        }
        let key = u64::from_le_bytes(buf[0..8].try_into().unwrap());
        let xid = u64::from_le_bytes(buf[8..16].try_into().unwrap());
        let seq = u32::from_le_bytes(buf[16..20].try_into().unwrap());
        let crc = u32::from_le_bytes(buf[20..24].try_into().unwrap());
        if crc != tag_checksum(key, xid, seq) {
            return None;
        }
        Some((key, WriteTag { xid: Xid(xid), seq }))
    }
}

/// One client-visible operation of a chaos transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HistOp {
    /// A read observing the tagged version (or `None` when the key was
    /// absent from the snapshot).
    Read {
        /// The key read.
        key: u64,
        /// The version observed, if any.
        observed: Option<WriteTag>,
    },
    /// A write with a fresh tag.
    Write {
        /// The key written.
        key: u64,
        /// The new version's tag.
        tag: WriteTag,
    },
}

/// The client-side outcome of a chaos transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HistOutcome {
    /// The engine acknowledged the commit.
    Committed {
        /// Dense commit sequence number from the acknowledgement hook.
        commit_seq: u64,
        /// The WAL durability watermark (in records) the engine
        /// reported at the moment of acknowledgement: any crash at or
        /// after that record must preserve this transaction.
        acked_at_record: u64,
    },
    /// Aborted — by the client, by first-updater-wins, or by an error.
    Aborted,
    /// Commit was submitted but the engine returned an error before
    /// acknowledging (e.g. a failed WAL force). The outcome is genuinely
    /// uncertain: recovery may or may not surface it, and neither result
    /// is a violation.
    Unacked,
}

/// One transaction of a chaos history.
#[derive(Clone, Debug)]
pub struct TxnRecord {
    /// The transaction id.
    pub xid: Xid,
    /// Operations in client-issue order.
    pub ops: Vec<HistOp>,
    /// Client-visible outcome.
    pub outcome: HistOutcome,
}

/// A complete chaos history: what every client did and observed, plus
/// the per-key committed version order extracted from a clean recovery
/// of the full log (via chain walks — the engine's own opinion of the
/// order, not the checker's).
#[derive(Clone, Debug, Default)]
pub struct History {
    /// All transactions, including aborted and unacknowledged ones.
    pub txns: Vec<TxnRecord>,
    /// Per-key committed version order, oldest first.
    pub version_order: BTreeMap<u64, Vec<WriteTag>>,
}

impl History {
    fn outcomes(&self) -> HashMap<Xid, HistOutcome> {
        self.txns.iter().map(|t| (t.xid, t.outcome)).collect()
    }

    /// Xids of all acknowledged-committed transactions.
    pub fn committed(&self) -> BTreeSet<Xid> {
        self.txns
            .iter()
            .filter(|t| matches!(t.outcome, HistOutcome::Committed { .. }))
            .map(|t| t.xid)
            .collect()
    }
}

/// Checks a history for the SI-forbidden anomalies G0 (dirty write),
/// G1a (aborted read), G1b (intermediate read) and lost update, treating
/// the engine as a black box: only client-observed tags and the
/// recovered version order are consulted.
pub fn check_anomalies(history: &History) -> Vec<Violation> {
    let mut violations = Vec::new();
    let outcomes = history.outcomes();
    let committed = history.committed();

    // Final write per (writer, key) — needed to tell an intermediate
    // observation from a final one.
    let mut final_write: HashMap<(Xid, u64), u32> = HashMap::new();
    for t in &history.txns {
        for op in &t.ops {
            if let HistOp::Write { key, tag } = op {
                let slot = final_write.entry((t.xid, *key)).or_insert(tag.seq);
                *slot = (*slot).max(tag.seq);
            }
        }
    }

    // G1a / G1b: walk every committed transaction's reads.
    for t in &history.txns {
        if !committed.contains(&t.xid) {
            continue;
        }
        for op in &t.ops {
            let HistOp::Read { key, observed: Some(tag) } = op else { continue };
            if tag.xid == t.xid {
                continue; // own writes are always visible
            }
            match outcomes.get(&tag.xid) {
                Some(HistOutcome::Committed { .. }) => {
                    let final_seq = final_write.get(&(tag.xid, *key)).copied().unwrap_or(tag.seq);
                    if tag.seq < final_seq {
                        violations.push(Violation {
                            condition: "G1b",
                            detail: format!(
                                "txn {:?} read intermediate version {:?} of key {key} \
                                 (writer {:?} later wrote seq {final_seq})",
                                t.xid, tag, tag.xid
                            ),
                        });
                    }
                }
                Some(HistOutcome::Aborted) => violations.push(Violation {
                    condition: "G1a",
                    detail: format!(
                        "txn {:?} read {:?} of key {key}, but writer {:?} aborted",
                        t.xid, tag, tag.xid
                    ),
                }),
                Some(HistOutcome::Unacked) | None => violations.push(Violation {
                    condition: "G1a",
                    detail: format!(
                        "txn {:?} read {:?} of key {key} from writer {:?}, which never \
                         acknowledged a commit",
                        t.xid, tag, tag.xid
                    ),
                }),
            }
        }
    }

    // G0: the per-key version orders of any two committed writers must
    // agree. Two flavours: interleaving within one key, and reversed
    // direction across two keys.
    let mut spans: BTreeMap<u64, HashMap<Xid, (usize, usize)>> = BTreeMap::new();
    for (key, order) in &history.version_order {
        let per_key = spans.entry(*key).or_default();
        for (pos, tag) in order.iter().enumerate() {
            if committed.contains(&tag.xid) {
                let span = per_key.entry(tag.xid).or_insert((pos, pos));
                span.0 = span.0.min(pos);
                span.1 = span.1.max(pos);
            }
        }
    }
    // Direction per ordered xid pair: true when `small` precedes `big`.
    let mut direction: HashMap<(Xid, Xid), (bool, u64)> = HashMap::new();
    for (key, per_key) in &spans {
        let mut writers: Vec<(&Xid, &(usize, usize))> = per_key.iter().collect();
        writers.sort();
        for i in 0..writers.len() {
            for j in (i + 1)..writers.len() {
                let (xa, (a_min, a_max)) = writers[i];
                let (xb, (b_min, b_max)) = writers[j];
                if a_min < b_max && b_min < a_max {
                    violations.push(Violation {
                        condition: "G0",
                        detail: format!(
                            "writes of {xa:?} and {xb:?} interleave in the version \
                             order of key {key}"
                        ),
                    });
                    continue;
                }
                let a_first = a_max < b_min;
                match direction.get(&(*xa, *xb)) {
                    None => {
                        direction.insert((*xa, *xb), (a_first, *key));
                    }
                    Some((prev, prev_key)) if *prev != a_first => {
                        violations.push(Violation {
                            condition: "G0",
                            detail: format!(
                                "version order of {xa:?} vs {xb:?} differs between \
                                 key {prev_key} and key {key}"
                            ),
                        });
                    }
                    Some(_) => {}
                }
            }
        }
    }

    // Lost update: two committed transactions that both read the same
    // version of a key and then both wrote that key — one update
    // overwrote the other without seeing it.
    let mut rmw_bases: BTreeMap<(u64, WriteTag), Vec<Xid>> = BTreeMap::new();
    for t in &history.txns {
        if !committed.contains(&t.xid) {
            continue;
        }
        let mut base: HashMap<u64, WriteTag> = HashMap::new();
        let mut wrote: BTreeSet<u64> = BTreeSet::new();
        for op in &t.ops {
            match op {
                HistOp::Read { key, observed: Some(tag) } if !wrote.contains(key) => {
                    base.insert(*key, *tag);
                }
                HistOp::Write { key, .. } => {
                    wrote.insert(*key);
                }
                _ => {}
            }
        }
        for key in wrote {
            if let Some(tag) = base.get(&key) {
                rmw_bases.entry((key, *tag)).or_default().push(t.xid);
            }
        }
    }
    for ((key, tag), writers) in rmw_bases {
        let others: Vec<Xid> = writers.into_iter().filter(|x| *x != tag.xid).collect();
        if others.len() >= 2 {
            violations.push(Violation {
                condition: "LU",
                detail: format!(
                    "txns {others:?} all read version {tag:?} of key {key} and then \
                     wrote it — lost update"
                ),
            });
        }
    }

    violations
}

// ---------------------------------------------------------------------------
// Serialization-graph (MVSG) construction and G2 detection
// ---------------------------------------------------------------------------

/// Dependency kind of one serialization-graph edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum DepKind {
    /// Write-write: the source's version precedes the target's in the
    /// committed version order of the key.
    Ww,
    /// Write-read: the target read the source's version.
    Wr,
    /// Read-write (antidependency): the target overwrote the version the
    /// source read — the source logically precedes the target although
    /// it never saw its write.
    Rw,
}

/// Builds the multi-version serialization graph over the committed
/// transactions of `history`: ww edges from per-key version orders, wr
/// edges from observed read tags, rw antidependencies from reads of
/// superseded (or absent) versions. Returns the deduplicated edge set.
fn serialization_graph(history: &History) -> BTreeSet<(Xid, Xid, DepKind, u64)> {
    let committed = history.committed();
    let mut edges: BTreeSet<(Xid, Xid, DepKind, u64)> = BTreeSet::new();

    // Committed version order per key, collapsed to one entry per
    // consecutive writer run (a txn's own back-to-back writes of a key
    // are not edges). Position of every committed tag for rw lookups.
    let mut tag_pos: HashMap<(u64, WriteTag), usize> = HashMap::new();
    let mut writer_runs: BTreeMap<u64, Vec<Xid>> = BTreeMap::new();
    for (key, order) in &history.version_order {
        let runs = writer_runs.entry(*key).or_default();
        for (pos, tag) in order.iter().enumerate() {
            if !committed.contains(&tag.xid) {
                continue;
            }
            tag_pos.insert((*key, *tag), pos);
            if runs.last() != Some(&tag.xid) {
                runs.push(tag.xid);
            }
        }
        // ww: consecutive distinct writers (transitive pairs follow by
        // path, which is all cycle detection needs).
        for w in runs.windows(2) {
            edges.insert((w[0], w[1], DepKind::Ww, *key));
        }
    }

    for t in &history.txns {
        if !committed.contains(&t.xid) {
            continue;
        }
        for op in &t.ops {
            let HistOp::Read { key, observed } = op else { continue };
            let order = history.version_order.get(key);
            match observed {
                Some(tag) => {
                    if tag.xid != t.xid && committed.contains(&tag.xid) {
                        edges.insert((tag.xid, t.xid, DepKind::Wr, *key));
                    }
                    // rw: the first distinct committed writer after the
                    // observed version (later ones follow via ww).
                    if let (Some(order), Some(&pos)) = (order, tag_pos.get(&(*key, *tag))) {
                        if let Some(next) = order[pos + 1..]
                            .iter()
                            .filter(|n| committed.contains(&n.xid))
                            .map(|n| n.xid)
                            .find(|&x| x != t.xid && x != tag.xid)
                        {
                            edges.insert((t.xid, next, DepKind::Rw, *key));
                        }
                    }
                }
                None => {
                    // Reading "absent" precedes every committed write of
                    // the key: rw to the first distinct writer.
                    if let Some(first) = order.into_iter().flatten().find_map(|n| {
                        (committed.contains(&n.xid) && n.xid != t.xid).then_some(n.xid)
                    }) {
                        edges.insert((t.xid, first, DepKind::Rw, *key));
                    }
                }
            }
        }
    }
    edges
}

/// BFS for a path `from → … → to` over `adj`, restricted to edges
/// satisfying `allow`. Returns the node sequence including both ends, or
/// `None` when unreachable.
fn find_path(
    adj: &HashMap<Xid, Vec<(Xid, DepKind, u64)>>,
    from: Xid,
    to: Xid,
    allow: impl Fn(DepKind) -> bool,
) -> Option<Vec<Xid>> {
    let mut prev: HashMap<Xid, Xid> = HashMap::new();
    let mut queue = std::collections::VecDeque::from([from]);
    while let Some(n) = queue.pop_front() {
        if n == to {
            let mut path = vec![to];
            let mut cur = to;
            while cur != from {
                cur = prev[&cur];
                path.push(cur);
            }
            path.reverse();
            return Some(path);
        }
        for &(next, kind, _) in adj.get(&n).into_iter().flatten() {
            if allow(kind) && next != from && !prev.contains_key(&next) {
                prev.insert(next, n);
                queue.push_back(next);
            }
        }
    }
    (from == to).then(|| vec![from])
}

/// Renders one cycle as a violation with a predicate-free witness: the
/// edge chain with kinds and keys, the pivot transactions (nodes whose
/// incoming or outgoing cycle edge is an rw antidependency on both
/// sides), and the key set.
fn cycle_violation(
    condition: &'static str,
    cycle: &[Xid],
    adj: &HashMap<Xid, Vec<(Xid, DepKind, u64)>>,
) -> Violation {
    // For each consecutive pair pick one concrete edge (prefer rw so the
    // witness shows the antidependencies that make it G2).
    let mut chain = String::new();
    let mut keys: BTreeSet<u64> = BTreeSet::new();
    let mut kinds: Vec<DepKind> = Vec::new();
    for i in 0..cycle.len() {
        let from = cycle[i];
        let to = cycle[(i + 1) % cycle.len()];
        let edge = adj
            .get(&from)
            .into_iter()
            .flatten()
            .filter(|&&(t, _, _)| t == to)
            .max_by_key(|&&(_, kind, _)| kind)
            .copied()
            .expect("cycle edges exist in adjacency");
        let (_, kind, key) = edge;
        keys.insert(key);
        kinds.push(kind);
        chain.push_str(&format!("T{} -{:?}(k{})-> ", from.0, kind, key));
    }
    chain.push_str(&format!("T{}", cycle[0].0));
    // Pivot: rw in *and* rw out within the cycle (the write-skew shape's
    // distinguishing node).
    let pivots: Vec<String> = (0..cycle.len())
        .filter(|&i| {
            let inc = kinds[(i + cycle.len() - 1) % cycle.len()];
            let out = kinds[i];
            inc == DepKind::Rw && out == DepKind::Rw
        })
        .map(|i| format!("T{}", cycle[i].0))
        .collect();
    Violation {
        condition,
        detail: format!(
            "serialization cycle {chain}; pivots [{}]; keys {:?}",
            pivots.join(", "),
            keys
        ),
    }
}

/// Checks a history for serialization-graph cycles. Cycles containing at
/// least one rw antidependency are reported as **G2** (write skew when
/// predicate-free, as here); cycles of only ww/wr edges as **G1c**.
///
/// Plain SI *permits* G2 — run this on SI histories only to demonstrate
/// skew, and on SSI histories to assert there is none. The existing
/// [`check_anomalies`] conditions stay separate because they hold under
/// both isolation levels.
pub fn check_serializability(history: &History) -> Vec<Violation> {
    let edges = serialization_graph(history);
    let mut adj: HashMap<Xid, Vec<(Xid, DepKind, u64)>> = HashMap::new();
    for &(from, to, kind, key) in &edges {
        adj.entry(from).or_default().push((to, kind, key));
    }
    let mut violations = Vec::new();
    let mut seen: BTreeSet<Vec<Xid>> = BTreeSet::new();
    let mut report = |condition, cycle: Vec<Xid>, adj: &HashMap<_, Vec<(Xid, DepKind, u64)>>| {
        let mut ids = cycle.clone();
        ids.sort();
        if seen.insert(ids) {
            violations.push(cycle_violation(condition, &cycle, adj));
        }
    };
    // Every rw edge a→b that closes (a reachable from b) witnesses a G2
    // cycle; every wr edge that closes over ww/wr alone witnesses G1c
    // (ww-only disagreement is G0, reported by `check_anomalies`).
    for &(from, to, kind, _) in &edges {
        match kind {
            DepKind::Rw => {
                if let Some(mut path) = find_path(&adj, to, from, |_| true) {
                    let start = path.iter().position(|&x| x == from).unwrap_or(0);
                    path.rotate_left(start);
                    report("G2", path, &adj);
                }
            }
            DepKind::Wr => {
                if let Some(mut path) =
                    find_path(&adj, to, from, |k| matches!(k, DepKind::Ww | DepKind::Wr))
                {
                    let start = path.iter().position(|&x| x == from).unwrap_or(0);
                    path.rotate_left(start);
                    report("G1c", path, &adj);
                }
            }
            DepKind::Ww => {}
        }
    }
    violations
}

/// What a crash-point probe recovered, compared against what the engine
/// acknowledged before the crash. All fields are derived outside the
/// engine: `prefix_commits` and `expected_state` come from decoding the
/// surviving WAL prefix, `recovered_commits` and `recovered_state` from
/// reads against the recovered database.
#[derive(Clone, Debug, Default)]
pub struct DurabilityInput {
    /// Number of WAL records that survived the crash.
    pub crash_record_count: u64,
    /// Xids with a Commit record inside the surviving prefix.
    pub prefix_commits: BTreeSet<Xid>,
    /// Xids the recovered database reports as committed.
    pub recovered_commits: BTreeSet<Xid>,
    /// Last committed tag per key according to the surviving prefix.
    pub expected_state: BTreeMap<u64, WriteTag>,
    /// Visible tag per key read back from the recovered database.
    pub recovered_state: BTreeMap<u64, WriteTag>,
}

/// Checks crash durability: every acknowledged commit survives
/// (DUR-ACK), recovery commits exactly the log-prefix commit set
/// (DUR-PREFIX), and the recovered visible state is the last committed
/// write per key in that prefix (DUR-STATE).
pub fn check_durability(history: &History, input: &DurabilityInput) -> Vec<Violation> {
    let mut violations = Vec::new();

    for t in &history.txns {
        let HistOutcome::Committed { acked_at_record, .. } = t.outcome else { continue };
        if acked_at_record <= input.crash_record_count && !input.recovered_commits.contains(&t.xid)
        {
            violations.push(Violation {
                condition: "DUR-ACK",
                detail: format!(
                    "txn {:?} was acknowledged at record {acked_at_record} but a crash \
                     at record {} lost it",
                    t.xid, input.crash_record_count
                ),
            });
        }
    }

    for xid in input.prefix_commits.difference(&input.recovered_commits) {
        violations.push(Violation {
            condition: "DUR-PREFIX",
            detail: format!(
                "txn {xid:?} has a Commit record in the surviving prefix but recovery \
                 did not commit it"
            ),
        });
    }
    for xid in input.recovered_commits.difference(&input.prefix_commits) {
        violations.push(Violation {
            condition: "DUR-PREFIX",
            detail: format!(
                "recovery committed txn {xid:?} with no Commit record in the surviving \
                 prefix"
            ),
        });
    }

    for (key, expected) in &input.expected_state {
        match input.recovered_state.get(key) {
            Some(got) if got == expected => {}
            got => violations.push(Violation {
                condition: "DUR-STATE",
                detail: format!("key {key}: expected visible tag {expected:?}, recovered {got:?}"),
            }),
        }
    }
    for key in input.recovered_state.keys() {
        if !input.expected_state.contains_key(key) {
            violations.push(Violation {
                condition: "DUR-STATE",
                detail: format!("key {key} is visible after recovery but absent from the prefix"),
            });
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_benchmark, DriverConfig};
    use crate::loader::load;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sias_core::SiasDb;
    use sias_si::SiDb;
    use sias_storage::StorageConfig;

    #[test]
    fn fresh_load_is_consistent() {
        let db = SiasDb::open(StorageConfig::in_memory());
        let cfg = TpccConfig::tiny();
        let tables = load(&db, &cfg).unwrap();
        let v = check_consistency(&db, &tables, &cfg).unwrap();
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn consistency_holds_after_benchmark_on_both_engines() {
        let cfg = TpccConfig::tiny();
        let dcfg = DriverConfig {
            terminals: 4,
            duration_secs: 5,
            warmup_secs: 0,
            cpu_cores: 2,
            bgwriter_interval_ms: 300,
            checkpoint_interval_secs: 2,
            think_scale: 0.0,
            seed: 11,
            serializable: false,
        };
        {
            let db = SiasDb::open(StorageConfig::in_memory());
            let tables = load(&db, &cfg).unwrap();
            run_benchmark(&db, &tables, &cfg, &dcfg, &db.stack().clock).unwrap();
            let v = check_consistency(&db, &tables, &cfg).unwrap();
            assert!(v.is_empty(), "sias violations: {v:?}");
        }
        {
            let db = SiDb::open(StorageConfig::in_memory());
            let tables = load(&db, &cfg).unwrap();
            run_benchmark(&db, &tables, &cfg, &dcfg, &db.stack().clock).unwrap();
            let v = check_consistency(&db, &tables, &cfg).unwrap();
            assert!(v.is_empty(), "si violations: {v:?}");
        }
    }

    #[test]
    fn detects_injected_inconsistency() {
        let db = SiasDb::open(StorageConfig::in_memory());
        let cfg = TpccConfig::tiny();
        let tables = load(&db, &cfg).unwrap();
        // Corrupt a district's sequence.
        let t = db.begin();
        let dk = keys::district(1, 1);
        let mut d = District::decode(&db.get(&t, tables.district, dk).unwrap().unwrap()).unwrap();
        d.next_o_id += 17;
        db.update(&t, tables.district, dk, &d.encode()).unwrap();
        db.commit(t).unwrap();
        let v = check_consistency(&db, &tables, &cfg).unwrap();
        assert!(v.iter().any(|v| v.condition == "C1"), "{v:?}");
    }

    #[test]
    fn consistency_survives_vacuum() {
        let db = SiasDb::open(StorageConfig::in_memory());
        let cfg = TpccConfig::tiny();
        let tables = load(&db, &cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for i in 0..100u64 {
            let kind = crate::txns::TxnKind::draw(&mut rng);
            crate::txns::run_txn(&db, &tables, &cfg, &mut rng, kind, 1, i).unwrap();
        }
        db.vacuum_all().unwrap();
        let v = check_consistency(&db, &tables, &cfg).unwrap();
        assert!(v.is_empty(), "{v:?}");
    }

    // -- black-box anomaly checker ---------------------------------------

    fn tag(xid: u64, seq: u32) -> WriteTag {
        WriteTag { xid: Xid(xid), seq }
    }

    fn committed(xid: u64, ops: Vec<HistOp>) -> TxnRecord {
        TxnRecord {
            xid: Xid(xid),
            ops,
            outcome: HistOutcome::Committed { commit_seq: xid, acked_at_record: 0 },
        }
    }

    fn conditions(v: &[Violation]) -> Vec<&'static str> {
        let mut c: Vec<&'static str> = v.iter().map(|v| v.condition).collect();
        c.sort();
        c.dedup();
        c
    }

    #[test]
    fn tag_payload_roundtrips_and_rejects_bit_flips() {
        let t = tag(42, 7);
        let enc = t.encode_payload(13);
        assert_eq!(enc.len(), TAG_PAYLOAD_LEN);
        assert_eq!(WriteTag::decode_payload(&enc), Some((13, t)));
        for bit in 0..TAG_PAYLOAD_LEN * 8 {
            let mut bad = enc.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            assert_eq!(WriteTag::decode_payload(&bad), None, "flip of bit {bit} undetected");
        }
        assert_eq!(WriteTag::decode_payload(&enc[1..]), None, "short payload");
    }

    #[test]
    fn clean_serial_history_has_no_anomalies() {
        // t1 writes k1; t2 reads it and updates; t3 reads t2's value.
        let h = History {
            txns: vec![
                committed(1, vec![HistOp::Write { key: 1, tag: tag(1, 0) }]),
                committed(
                    2,
                    vec![
                        HistOp::Read { key: 1, observed: Some(tag(1, 0)) },
                        HistOp::Write { key: 1, tag: tag(2, 1) },
                    ],
                ),
                committed(3, vec![HistOp::Read { key: 1, observed: Some(tag(2, 1)) }]),
            ],
            version_order: [(1, vec![tag(1, 0), tag(2, 1)])].into(),
        };
        assert_eq!(check_anomalies(&h), vec![]);
    }

    #[test]
    fn aborted_read_is_g1a() {
        let h = History {
            txns: vec![
                TxnRecord {
                    xid: Xid(1),
                    ops: vec![HistOp::Write { key: 1, tag: tag(1, 0) }],
                    outcome: HistOutcome::Aborted,
                },
                committed(2, vec![HistOp::Read { key: 1, observed: Some(tag(1, 0)) }]),
            ],
            version_order: BTreeMap::new(),
        };
        assert_eq!(conditions(&check_anomalies(&h)), vec!["G1a"]);
    }

    #[test]
    fn intermediate_read_is_g1b() {
        let h = History {
            txns: vec![
                committed(
                    1,
                    vec![
                        HistOp::Write { key: 1, tag: tag(1, 0) },
                        HistOp::Write { key: 1, tag: tag(1, 1) },
                    ],
                ),
                committed(2, vec![HistOp::Read { key: 1, observed: Some(tag(1, 0)) }]),
            ],
            version_order: [(1, vec![tag(1, 0), tag(1, 1)])].into(),
        };
        assert_eq!(conditions(&check_anomalies(&h)), vec!["G1b"]);
    }

    #[test]
    fn own_intermediate_reads_are_fine() {
        let h = History {
            txns: vec![committed(
                1,
                vec![
                    HistOp::Write { key: 1, tag: tag(1, 0) },
                    HistOp::Read { key: 1, observed: Some(tag(1, 0)) },
                    HistOp::Write { key: 1, tag: tag(1, 1) },
                ],
            )],
            version_order: [(1, vec![tag(1, 0), tag(1, 1)])].into(),
        };
        assert_eq!(check_anomalies(&h), vec![]);
    }

    #[test]
    fn reversed_version_orders_are_g0() {
        // t1 before t2 on key 1, but t2 before t1 on key 2.
        let h = History {
            txns: vec![
                committed(
                    1,
                    vec![
                        HistOp::Write { key: 1, tag: tag(1, 0) },
                        HistOp::Write { key: 2, tag: tag(1, 1) },
                    ],
                ),
                committed(
                    2,
                    vec![
                        HistOp::Write { key: 1, tag: tag(2, 0) },
                        HistOp::Write { key: 2, tag: tag(2, 1) },
                    ],
                ),
            ],
            version_order: [(1, vec![tag(1, 0), tag(2, 0)]), (2, vec![tag(2, 1), tag(1, 1)])]
                .into(),
        };
        assert_eq!(conditions(&check_anomalies(&h)), vec!["G0"]);
    }

    #[test]
    fn interleaved_writes_on_one_key_are_g0() {
        let h = History {
            txns: vec![
                committed(
                    1,
                    vec![
                        HistOp::Write { key: 1, tag: tag(1, 0) },
                        HistOp::Write { key: 1, tag: tag(1, 1) },
                    ],
                ),
                committed(2, vec![HistOp::Write { key: 1, tag: tag(2, 0) }]),
            ],
            version_order: [(1, vec![tag(1, 0), tag(2, 0), tag(1, 1)])].into(),
        };
        assert_eq!(conditions(&check_anomalies(&h)), vec!["G0"]);
    }

    #[test]
    fn concurrent_rmw_of_same_version_is_lost_update() {
        let h = History {
            txns: vec![
                committed(1, vec![HistOp::Write { key: 5, tag: tag(1, 0) }]),
                committed(
                    2,
                    vec![
                        HistOp::Read { key: 5, observed: Some(tag(1, 0)) },
                        HistOp::Write { key: 5, tag: tag(2, 0) },
                    ],
                ),
                committed(
                    3,
                    vec![
                        HistOp::Read { key: 5, observed: Some(tag(1, 0)) },
                        HistOp::Write { key: 5, tag: tag(3, 0) },
                    ],
                ),
            ],
            version_order: [(5, vec![tag(1, 0), tag(2, 0), tag(3, 0)])].into(),
        };
        assert_eq!(conditions(&check_anomalies(&h)), vec!["LU"]);
    }

    #[test]
    fn sequential_rmw_is_not_lost_update() {
        // t3 read t2's version, not t1's: a proper chain of updates.
        let h = History {
            txns: vec![
                committed(1, vec![HistOp::Write { key: 5, tag: tag(1, 0) }]),
                committed(
                    2,
                    vec![
                        HistOp::Read { key: 5, observed: Some(tag(1, 0)) },
                        HistOp::Write { key: 5, tag: tag(2, 0) },
                    ],
                ),
                committed(
                    3,
                    vec![
                        HistOp::Read { key: 5, observed: Some(tag(2, 0)) },
                        HistOp::Write { key: 5, tag: tag(3, 0) },
                    ],
                ),
            ],
            version_order: [(5, vec![tag(1, 0), tag(2, 0), tag(3, 0)])].into(),
        };
        assert_eq!(check_anomalies(&h), vec![]);
    }

    #[test]
    fn durability_flags_lost_acknowledged_commit() {
        let h = History {
            txns: vec![TxnRecord {
                xid: Xid(1),
                ops: vec![HistOp::Write { key: 1, tag: tag(1, 0) }],
                outcome: HistOutcome::Committed { commit_seq: 1, acked_at_record: 4 },
            }],
            version_order: BTreeMap::new(),
        };
        // Crash after the ack watermark, but recovery lost the txn.
        let input = DurabilityInput { crash_record_count: 6, ..Default::default() };
        assert_eq!(conditions(&check_durability(&h, &input)), vec!["DUR-ACK"]);
        // Crash before the ack watermark: losing it is fine.
        let input = DurabilityInput { crash_record_count: 3, ..Default::default() };
        assert_eq!(check_durability(&h, &input), vec![]);
    }

    #[test]
    fn durability_flags_prefix_and_state_mismatches() {
        let h = History::default();
        let input = DurabilityInput {
            crash_record_count: 10,
            prefix_commits: [Xid(1), Xid(2)].into(),
            recovered_commits: [Xid(1), Xid(3)].into(),
            expected_state: [(1, tag(1, 0)), (2, tag(2, 0))].into(),
            recovered_state: [(1, tag(1, 0)), (2, tag(9, 0)), (3, tag(3, 0))].into(),
        };
        let v = check_durability(&h, &input);
        assert_eq!(conditions(&v), vec!["DUR-PREFIX", "DUR-STATE"]);
        assert_eq!(v.iter().filter(|v| v.condition == "DUR-PREFIX").count(), 2);
        assert_eq!(v.iter().filter(|v| v.condition == "DUR-STATE").count(), 2);
    }

    #[test]
    fn unacked_outcome_never_triggers_durability_or_g1a_on_its_own() {
        let h = History {
            txns: vec![TxnRecord {
                xid: Xid(1),
                ops: vec![HistOp::Write { key: 1, tag: tag(1, 0) }],
                outcome: HistOutcome::Unacked,
            }],
            version_order: [(1, vec![tag(1, 0)])].into(),
        };
        assert_eq!(check_anomalies(&h), vec![]);
        // Whether recovery surfaced it or not, no DUR-ACK fires.
        for recovered in [BTreeSet::new(), BTreeSet::from([Xid(1)])] {
            let input = DurabilityInput {
                crash_record_count: 100,
                prefix_commits: recovered.clone(),
                recovered_commits: recovered,
                ..Default::default()
            };
            assert_eq!(check_durability(&h, &input), vec![]);
        }
    }
}
