//! TPC-C consistency conditions.
//!
//! A subset of the specification's §3.3.2 consistency requirements,
//! checkable against any engine. The differential tests run them after
//! benchmark activity to establish that both engines maintain a
//! consistent database — which is what makes the performance comparison
//! meaningful.

use sias_common::SiasResult;
use sias_txn::MvccEngine;

use crate::config::{Tables, TpccConfig};
use crate::keys;
use crate::schema::*;

/// A failed consistency condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which condition (e.g. "C1").
    pub condition: &'static str,
    /// Human-readable description.
    pub detail: String,
}

/// Runs the consistency conditions; returns all violations found.
pub fn check_consistency<E: MvccEngine + ?Sized>(
    engine: &E,
    tables: &Tables,
    cfg: &TpccConfig,
) -> SiasResult<Vec<Violation>> {
    let mut violations = Vec::new();
    let t = engine.begin();

    for w in 1..=cfg.warehouses {
        let mut district_ytd_sum = 0i64;
        for d in 1..=cfg.districts_per_warehouse {
            let dk = keys::district(w, d);
            let Some(bytes) = engine.get(&t, tables.district, dk)? else {
                violations.push(Violation {
                    condition: "C0",
                    detail: format!("district ({w},{d}) missing"),
                });
                continue;
            };
            let dist = District::decode(&bytes)?;
            district_ytd_sum += dist.ytd;

            // C1: d_next_o_id − 1 == max(o_id) of the district.
            let orders = engine.scan_range(
                &t,
                tables.orders,
                keys::order(w, d, 0),
                keys::order(w, d, u32::MAX >> 8),
            )?;
            let max_o = orders
                .iter()
                .map(|(_, b)| Order::decode(b).map(|o| o.o_id))
                .collect::<SiasResult<Vec<_>>>()?
                .into_iter()
                .max()
                .unwrap_or(0);
            if dist.next_o_id != max_o + 1 {
                violations.push(Violation {
                    condition: "C1",
                    detail: format!(
                        "district ({w},{d}): next_o_id {} but max(o_id) {}",
                        dist.next_o_id, max_o
                    ),
                });
            }

            // C2: every NEW_ORDER row refers to an existing, undelivered
            // order.
            let pending = engine.scan_range(
                &t,
                tables.new_order,
                keys::order(w, d, 0),
                keys::order(w, d, u32::MAX >> 8),
            )?;
            for (no_key, bytes) in &pending {
                let no = NewOrderRow::decode(bytes)?;
                match engine.get(&t, tables.orders, *no_key)? {
                    Some(ob) => {
                        let o = Order::decode(&ob)?;
                        if o.carrier_id != 0 {
                            violations.push(Violation {
                                condition: "C2",
                                detail: format!(
                                    "new_order ({w},{d},{}) already delivered",
                                    no.o_id
                                ),
                            });
                        }
                    }
                    None => violations.push(Violation {
                        condition: "C2",
                        detail: format!("new_order ({w},{d},{}) has no order", no.o_id),
                    }),
                }
            }

            // C3: every order's ol_cnt equals its actual line count, and
            // delivered orders have delivered lines.
            for (okey, bytes) in &orders {
                let o = Order::decode(bytes)?;
                let lines =
                    engine.scan_range(&t, tables.order_line, okey << 4, (okey << 4) | 15)?;
                if lines.len() as u32 != o.ol_cnt {
                    violations.push(Violation {
                        condition: "C3",
                        detail: format!(
                            "order ({w},{d},{}): ol_cnt {} but {} lines",
                            o.o_id,
                            o.ol_cnt,
                            lines.len()
                        ),
                    });
                }
                if o.carrier_id != 0 {
                    for (_, lb) in &lines {
                        if OrderLine::decode(lb)?.delivery_d == 0 {
                            violations.push(Violation {
                                condition: "C4",
                                detail: format!(
                                    "delivered order ({w},{d},{}) has undelivered line",
                                    o.o_id
                                ),
                            });
                        }
                    }
                }
            }
        }
        // C5: warehouse ytd == sum of its districts' ytd (both start with
        // matching constants and Payment adds to both).
        let wk = keys::warehouse(w);
        if let Some(bytes) = engine.get(&t, tables.warehouse, wk)? {
            let wh = Warehouse::decode(&bytes)?;
            if wh.ytd != district_ytd_sum {
                violations.push(Violation {
                    condition: "C5",
                    detail: format!(
                        "warehouse {w}: ytd {} != sum(district ytd) {}",
                        wh.ytd, district_ytd_sum
                    ),
                });
            }
        }
    }
    engine.commit(t)?;
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_benchmark, DriverConfig};
    use crate::loader::load;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sias_core::SiasDb;
    use sias_si::SiDb;
    use sias_storage::StorageConfig;

    #[test]
    fn fresh_load_is_consistent() {
        let db = SiasDb::open(StorageConfig::in_memory());
        let cfg = TpccConfig::tiny();
        let tables = load(&db, &cfg).unwrap();
        let v = check_consistency(&db, &tables, &cfg).unwrap();
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn consistency_holds_after_benchmark_on_both_engines() {
        let cfg = TpccConfig::tiny();
        let dcfg = DriverConfig {
            terminals: 4,
            duration_secs: 5,
            warmup_secs: 0,
            cpu_cores: 2,
            bgwriter_interval_ms: 300,
            checkpoint_interval_secs: 2,
            think_scale: 0.0,
            seed: 11,
        };
        {
            let db = SiasDb::open(StorageConfig::in_memory());
            let tables = load(&db, &cfg).unwrap();
            run_benchmark(&db, &tables, &cfg, &dcfg, &db.stack().clock).unwrap();
            let v = check_consistency(&db, &tables, &cfg).unwrap();
            assert!(v.is_empty(), "sias violations: {v:?}");
        }
        {
            let db = SiDb::open(StorageConfig::in_memory());
            let tables = load(&db, &cfg).unwrap();
            run_benchmark(&db, &tables, &cfg, &dcfg, &db.stack().clock).unwrap();
            let v = check_consistency(&db, &tables, &cfg).unwrap();
            assert!(v.is_empty(), "si violations: {v:?}");
        }
    }

    #[test]
    fn detects_injected_inconsistency() {
        let db = SiasDb::open(StorageConfig::in_memory());
        let cfg = TpccConfig::tiny();
        let tables = load(&db, &cfg).unwrap();
        // Corrupt a district's sequence.
        let t = db.begin();
        let dk = keys::district(1, 1);
        let mut d = District::decode(&db.get(&t, tables.district, dk).unwrap().unwrap()).unwrap();
        d.next_o_id += 17;
        db.update(&t, tables.district, dk, &d.encode()).unwrap();
        db.commit(t).unwrap();
        let v = check_consistency(&db, &tables, &cfg).unwrap();
        assert!(v.iter().any(|v| v.condition == "C1"), "{v:?}");
    }

    #[test]
    fn consistency_survives_vacuum() {
        let db = SiasDb::open(StorageConfig::in_memory());
        let cfg = TpccConfig::tiny();
        let tables = load(&db, &cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for i in 0..100u64 {
            let kind = crate::txns::TxnKind::draw(&mut rng);
            crate::txns::run_txn(&db, &tables, &cfg, &mut rng, kind, 1, i).unwrap();
        }
        db.vacuum_all().unwrap();
        let v = check_consistency(&db, &tables, &cfg).unwrap();
        assert!(v.is_empty(), "{v:?}");
    }
}
