//! Multi-terminal benchmark driver (the DBT2 client).
//!
//! Drives N terminals against an engine in a deterministic discrete-event
//! loop over virtual time: each terminal issues back-to-back transactions
//! (DBT2's zero-think-time mode), device models charge I/O latency on the
//! shared [`VirtualClock`], a small CPU model with a fixed core count
//! charges per-transaction compute, and maintenance ticks fire the
//! background writer (the t1 path) and periodic checkpoints (the t2
//! boundary).
//!
//! Reported metrics mirror the paper's: **NOTPM** (committed new-order
//! transactions per virtual minute) and new-order **response times**.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sias_common::{SiasResult, VirtualClock};
use sias_txn::MvccEngine;

use crate::config::{Tables, TpccConfig};
use crate::txns::{run_txn, Outcome, TxnKind};

/// Driver parameters.
#[derive(Clone, Debug)]
pub struct DriverConfig {
    /// Concurrent terminals (DBT2 connections; the specification attaches
    /// 10 per warehouse).
    pub terminals: usize,
    /// Measured virtual duration, seconds.
    pub duration_secs: u64,
    /// Warmup excluded from metrics, seconds.
    pub warmup_secs: u64,
    /// CPU cores of the modelled server.
    pub cpu_cores: usize,
    /// Background-writer tick interval (PostgreSQL `bgwriter_delay`), ms.
    pub bgwriter_interval_ms: u64,
    /// Checkpoint interval, seconds.
    pub checkpoint_interval_secs: u64,
    /// Scale factor on the spec's keying + think times. `1.0` = full
    /// emulated users (≈ 12 NOTPM ceiling per warehouse, like DBT2 with
    /// terminals); `0.0` = zero-think-time saturation mode.
    pub think_scale: f64,
    /// Driver rng seed.
    pub seed: u64,
    /// Run the engine in serializable (SSI) mode; pivot aborts surface
    /// as retryable conflicts and in
    /// [`BenchResult::serialization_aborts`].
    pub serializable: bool,
}

impl DriverConfig {
    /// The specification-shaped default: 10 terminals per warehouse with
    /// full keying + think times, 4 cores, 200 ms bgwriter, 30 s
    /// checkpoints.
    pub fn for_warehouses(warehouses: u32) -> Self {
        DriverConfig {
            terminals: (warehouses as usize * 10).clamp(4, 10_000),
            duration_secs: 60,
            warmup_secs: 10,
            cpu_cores: 4,
            bgwriter_interval_ms: 200,
            checkpoint_interval_secs: 30,
            think_scale: 1.0,
            seed: 0xDB72,
            serializable: false,
        }
    }

    /// Switches the run to serializable (SSI) mode.
    pub fn with_serializable(mut self, on: bool) -> Self {
        self.serializable = on;
        self
    }

    /// Overrides the measured duration.
    pub fn with_duration(mut self, secs: u64) -> Self {
        self.duration_secs = secs;
        self
    }

    /// Overrides the think-time scale.
    pub fn with_think_scale(mut self, scale: f64) -> Self {
        self.think_scale = scale;
        self
    }
}

/// Per-transaction CPU cost (µs) of the modelled server — calibrated to
/// PostgreSQL-era per-transaction compute on the paper's Core2Duo/Xeon
/// class hardware (milliseconds, not microseconds).
pub fn cpu_cost_us(kind: TxnKind) -> u64 {
    match kind {
        TxnKind::NewOrder => 9_000,
        TxnKind::Payment => 4_000,
        TxnKind::OrderStatus => 4_000,
        TxnKind::Delivery => 20_000,
        TxnKind::StockLevel => 12_000,
    }
}

/// Keying time (fixed) per transaction, µs (spec §5.2.5.7).
pub fn keying_us(kind: TxnKind) -> u64 {
    match kind {
        TxnKind::NewOrder => 18_000_000,
        TxnKind::Payment => 3_000_000,
        TxnKind::OrderStatus => 2_000_000,
        TxnKind::Delivery => 2_000_000,
        TxnKind::StockLevel => 2_000_000,
    }
}

/// Mean think time per transaction, µs (spec §5.2.5.7).
pub fn think_mean_us(kind: TxnKind) -> u64 {
    match kind {
        TxnKind::NewOrder => 12_000_000,
        TxnKind::Payment => 12_000_000,
        TxnKind::OrderStatus => 10_000_000,
        TxnKind::Delivery => 5_000_000,
        TxnKind::StockLevel => 5_000_000,
    }
}

/// Benchmark outcome.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Engine name ("sias" / "si").
    pub engine: String,
    /// Warehouse count of the run.
    pub warehouses: u32,
    /// Measured interval in virtual seconds (duration − warmup).
    pub measured_secs: f64,
    /// New-order transactions per minute — the paper's headline metric.
    pub notpm: f64,
    /// Committed new-order count in the measured interval.
    pub new_order_commits: u64,
    /// All commits in the measured interval.
    pub commits: u64,
    /// Intentional rollbacks (1 % rule).
    pub rollbacks: u64,
    /// First-updater-wins conflicts.
    pub conflicts: u64,
    /// Mean new-order response time, seconds.
    pub avg_response_s: f64,
    /// Median new-order response time, seconds.
    pub p50_response_s: f64,
    /// 90th-percentile new-order response time, seconds.
    pub p90_response_s: f64,
    /// 99th-percentile new-order response time, seconds.
    pub p99_response_s: f64,
    /// Worst new-order response time, seconds.
    pub max_response_s: f64,
    /// SSI pivot aborts over the whole run (zero unless the driver ran
    /// with [`DriverConfig::serializable`]).
    pub serialization_aborts: u64,
}

fn percentile(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx] as f64 / 1e6
}

/// Runs the TPC-C mix against `engine` for the configured virtual
/// duration and reports NOTPM + response times.
pub fn run_benchmark<E: MvccEngine + ?Sized>(
    engine: &E,
    tables: &Tables,
    cfg: &TpccConfig,
    dcfg: &DriverConfig,
    clock: &VirtualClock,
) -> SiasResult<BenchResult> {
    if dcfg.serializable {
        engine.set_serializable();
    }
    let ser_aborts_base = engine.serialization_aborts();
    let start = clock.now_us();
    let warmup_end = start + dcfg.warmup_secs * 1_000_000;
    let end = start + (dcfg.warmup_secs + dcfg.duration_secs) * 1_000_000;

    // One rng per terminal, seeded from (driver seed, terminal id):
    // every terminal issues an identical transaction sequence regardless
    // of engine timing, so runs on different engines are paired — the
    // offered work is byte-identical and throughput differences are
    // purely the engine's doing.
    let mut rngs: Vec<StdRng> = (0..dcfg.terminals)
        .map(|i| StdRng::seed_from_u64(dcfg.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
        .collect();
    // Event heap of (next-free-time, terminal id); terminals staggered so
    // they do not stampede at t = 0.
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
        (0..dcfg.terminals).map(|i| Reverse((start + i as u64 * 137, i))).collect();
    let mut cores = vec![start; dcfg.cpu_cores.max(1)];
    let mut next_bg = start + dcfg.bgwriter_interval_ms * 1000;
    let mut next_ckpt = start + dcfg.checkpoint_interval_secs * 1_000_000;

    let mut new_order_commits = 0u64;
    let mut commits = 0u64;
    let mut rollbacks = 0u64;
    let mut conflicts = 0u64;
    let mut responses_us: Vec<u64> = Vec::new();

    // Driver-level observability: measured-interval outcome counters and
    // the new-order response-time distribution (virtual µs), reported
    // into the engine's registry so one snapshot covers the whole run.
    let obs = engine.obs_registry().map(|r| {
        (
            r.counter("workload.driver.commits"),
            r.counter("workload.driver.rollbacks"),
            r.counter("workload.driver.conflicts"),
            r.histogram("workload.driver.response_us"),
        )
    });

    while let Some(Reverse((t, term))) = heap.pop() {
        if t >= end {
            continue; // terminal finished
        }
        // Fire maintenance due before this event.
        while next_bg <= t || next_ckpt <= t {
            if next_bg <= next_ckpt {
                clock.set_us(next_bg);
                engine.maintenance(false);
                next_bg += dcfg.bgwriter_interval_ms * 1000;
            } else {
                clock.set_us(next_ckpt);
                engine.maintenance(true);
                next_ckpt += dcfg.checkpoint_interval_secs * 1_000_000;
            }
        }
        clock.set_us(t);
        let rng = &mut rngs[term];
        let kind = TxnKind::draw(rng);
        let w = (term as u32 % cfg.warehouses) + 1;
        let outcome = run_txn(engine, tables, cfg, rng, kind, w, t)?;
        // Charge CPU on the least-loaded core.
        let cost = cpu_cost_us(kind);
        let core = cores.iter_mut().min().expect("at least one core");
        let cpu_start = (*core).max(clock.now_us());
        *core = cpu_start + cost;
        clock.advance_to_us(cpu_start + cost);

        let done = clock.now_us();
        let measured = done >= warmup_end;
        // Emulated-user pacing: keying before the next transaction plus
        // an exponentially distributed think time after this one.
        let pause = if dcfg.think_scale > 0.0 {
            let think = -(think_mean_us(kind) as f64) * (1.0 - rng.random::<f64>()).ln();
            ((keying_us(kind) as f64 + think) * dcfg.think_scale) as u64
        } else {
            0
        };
        if measured {
            match outcome {
                Outcome::Committed => {
                    commits += 1;
                    if let Some((c, _, _, resp)) = &obs {
                        c.inc();
                        if kind == TxnKind::NewOrder {
                            resp.record(done - t);
                        }
                    }
                    if kind == TxnKind::NewOrder {
                        new_order_commits += 1;
                        responses_us.push(done - t);
                    }
                }
                Outcome::RolledBack => {
                    rollbacks += 1;
                    if let Some((_, r, _, _)) = &obs {
                        r.inc();
                    }
                }
                Outcome::Conflicted => {
                    conflicts += 1;
                    if let Some((_, _, c, _)) = &obs {
                        c.inc();
                    }
                }
            }
        }
        heap.push(Reverse((done + pause, term)));
    }
    clock.set_us(end);

    responses_us.sort_unstable();
    let measured_secs = dcfg.duration_secs as f64;
    let avg = if responses_us.is_empty() {
        0.0
    } else {
        responses_us.iter().sum::<u64>() as f64 / responses_us.len() as f64 / 1e6
    };
    Ok(BenchResult {
        engine: engine.name().to_string(),
        warehouses: cfg.warehouses,
        measured_secs,
        notpm: new_order_commits as f64 / (measured_secs / 60.0),
        new_order_commits,
        commits,
        rollbacks,
        conflicts,
        avg_response_s: avg,
        p50_response_s: percentile(&responses_us, 0.50),
        p90_response_s: percentile(&responses_us, 0.90),
        p99_response_s: percentile(&responses_us, 0.99),
        max_response_s: percentile(&responses_us, 1.0),
        serialization_aborts: engine.serialization_aborts().saturating_sub(ser_aborts_base),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::load;
    use sias_core::SiasDb;
    use sias_si::SiDb;
    use sias_storage::StorageConfig;

    #[test]
    fn benchmark_runs_on_in_memory_sias() {
        let db = SiasDb::open(StorageConfig::in_memory());
        let cfg = TpccConfig::tiny();
        let tables = load(&db, &cfg).unwrap();
        let dcfg = DriverConfig {
            terminals: 4,
            duration_secs: 5,
            warmup_secs: 1,
            cpu_cores: 2,
            bgwriter_interval_ms: 200,
            checkpoint_interval_secs: 3,
            think_scale: 0.0,
            seed: 1,
            serializable: false,
        };
        let res = run_benchmark(&db, &tables, &cfg, &dcfg, &db.stack().clock).unwrap();
        assert!(res.notpm > 0.0, "{res:?}");
        assert!(res.new_order_commits > 0);
        assert!(res.avg_response_s >= 0.0);
        assert!(res.p99_response_s >= res.p50_response_s);
        // Virtual clock ended exactly at the configured horizon.
        assert_eq!(db.stack().clock.now_us(), 6_000_000);
        // The driver reported its measured-interval outcomes into the
        // engine's registry, agreeing with the returned BenchResult.
        let snap = db.metrics_snapshot();
        assert_eq!(snap.counter("workload.driver.commits"), Some(res.commits));
        assert_eq!(snap.counter("workload.driver.rollbacks"), Some(res.rollbacks));
        assert_eq!(snap.counter("workload.driver.conflicts"), Some(res.conflicts));
        assert_eq!(
            snap.histogram("workload.driver.response_us").unwrap().count,
            res.new_order_commits
        );
    }

    #[test]
    fn benchmark_runs_on_ssd_si() {
        let db =
            SiDb::open(StorageConfig::ssd().with_pool_frames(256).with_capacity_pages(1 << 15));
        let cfg = TpccConfig::tiny();
        let tables = load(&db, &cfg).unwrap();
        let dcfg = DriverConfig {
            terminals: 4,
            duration_secs: 5,
            warmup_secs: 1,
            cpu_cores: 2,
            bgwriter_interval_ms: 200,
            checkpoint_interval_secs: 3,
            think_scale: 0.0,
            seed: 1,
            serializable: false,
        };
        let res = run_benchmark(&db, &tables, &cfg, &dcfg, &db.stack().clock).unwrap();
        assert!(res.notpm > 0.0, "{res:?}");
        // On a real device model the engine must have issued writes.
        assert!(db.stack().data.stats().host_write_pages > 0);
    }

    #[test]
    fn benchmark_runs_serializable_on_sias() {
        // SSI mode must drive the full TPC-C mix end to end: pivot
        // aborts surface as retryable conflicts, never as errors.
        let db = SiasDb::open(StorageConfig::in_memory());
        let cfg = TpccConfig::tiny();
        let tables = load(&db, &cfg).unwrap();
        let dcfg = DriverConfig {
            terminals: 4,
            duration_secs: 5,
            warmup_secs: 1,
            cpu_cores: 2,
            bgwriter_interval_ms: 200,
            checkpoint_interval_secs: 3,
            think_scale: 0.0,
            seed: 1,
            serializable: true,
        };
        let res = run_benchmark(&db, &tables, &cfg, &dcfg, &db.stack().clock).unwrap();
        assert!(res.notpm > 0.0, "SSI still commits work: {res:?}");
        assert!(res.new_order_commits > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let db = SiasDb::open(StorageConfig::in_memory());
            let cfg = TpccConfig::tiny();
            let tables = load(&db, &cfg).unwrap();
            let dcfg = DriverConfig {
                terminals: 3,
                duration_secs: 3,
                warmup_secs: 0,
                cpu_cores: 2,
                bgwriter_interval_ms: 500,
                checkpoint_interval_secs: 2,
                think_scale: 0.0,
                seed: 42,
                serializable: false,
            };
            run_benchmark(&db, &tables, &cfg, &dcfg, &db.stack().clock).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.new_order_commits, b.new_order_commits);
        assert_eq!(a.commits, b.commits);
        assert!((a.notpm - b.notpm).abs() < 1e-9);
    }

    #[test]
    fn cpu_cap_bounds_throughput() {
        // With zero-latency storage, throughput is CPU-bound: NOTPM can
        // not exceed cores × (60s / avg cpu cost) × new-order share.
        let db = SiasDb::open(StorageConfig::in_memory());
        let cfg = TpccConfig::tiny();
        let tables = load(&db, &cfg).unwrap();
        let dcfg = DriverConfig {
            terminals: 16,
            duration_secs: 10,
            warmup_secs: 0,
            cpu_cores: 1,
            bgwriter_interval_ms: 1000,
            checkpoint_interval_secs: 10,
            think_scale: 0.0,
            seed: 2,
            serializable: false,
        };
        let res = run_benchmark(&db, &tables, &cfg, &dcfg, &db.stack().clock).unwrap();
        // 1 core, ~7.2 ms mean mix cost → ≤ ~8.3k txn/min; new-order
        // ≈ 45 % of that ≈ 3.7k NOTPM. The ceiling leaves headroom for
        // mix-sampling noise: the drawn mix at a fixed seed shifts with
        // the RNG stream, and ~1.4k draws can skew a few percent cheap.
        assert!(res.notpm < 4_800.0, "CPU model must cap throughput: {res:?}");
        assert!(res.notpm > 100.0, "but it should still do real work: {res:?}");
    }
}
