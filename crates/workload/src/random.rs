//! TPC-C randomness: uniform helpers and the NURand skew function.

use rand::rngs::StdRng;
use rand::RngExt;

/// The non-uniform random function of TPC-C §2.1.6:
/// `NURand(A, x, y) = (((rand(0,A) | rand(x,y)) + C) % (y - x + 1)) + x`.
///
/// `A` must be a power of two minus one spanning roughly the value range;
/// `c` is the run constant.
pub fn nurand(rng: &mut StdRng, a: u64, x: u64, y: u64, c: u64) -> u64 {
    let lhs = rng.random_range(0..=a);
    let rhs = rng.random_range(x..=y);
    (((lhs | rhs) + c) % (y - x + 1)) + x
}

/// Picks the NURand `A` constant for a given cardinality: the largest
/// `2^k - 1` not exceeding the cardinality (mirrors the spec's 1023 for
/// 3000 customers and 8191 for 100 000 items, proportionally).
pub fn nurand_a(cardinality: u64) -> u64 {
    let mut a = 1u64;
    while a * 2 <= cardinality {
        a *= 2;
    }
    a - 1
}

/// Uniform in `lo..=hi`.
pub fn uniform(rng: &mut StdRng, lo: u64, hi: u64) -> u64 {
    rng.random_range(lo..=hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn nurand_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = nurand(&mut rng, 255, 1, 1000, 123);
            assert!((1..=1000).contains(&v));
        }
    }

    #[test]
    fn nurand_is_skewed() {
        // The OR construction makes some values far more likely than a
        // uniform draw: measure concentration of the top decile.
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0u32; 1001];
        for _ in 0..100_000 {
            counts[nurand(&mut rng, 1023, 1, 1000, 0) as usize] += 1;
        }
        let mut sorted: Vec<u32> = counts.to_vec();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top_100: u32 = sorted[..100].iter().sum();
        assert!(
            top_100 > 20_000,
            "top 10% of values should absorb well over 10% of draws, got {top_100}"
        );
    }

    #[test]
    fn nurand_a_matches_spec_scale() {
        assert_eq!(nurand_a(3000), 2047);
        assert_eq!(nurand_a(100_000), 65_535);
        assert_eq!(nurand_a(1000), 511);
        assert_eq!(nurand_a(1), 0);
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = uniform(&mut rng, 5, 15);
            assert!((5..=15).contains(&v));
        }
    }
}
