//! Real OS-thread workload driver.
//!
//! The discrete-event driver ([`crate::driver`]) interleaves simulated
//! terminals on one thread under the virtual clock — ideal for the
//! paper's device-time experiments, useless for measuring the engine's
//! *multi-core* hot paths (sharded buffer pool, group commit, lock-free
//! VID map). This driver is the complement: `threads` genuine OS threads
//! hammer one shared engine through the [`MvccEngine`] trait, each with
//! its own seeded splitmix64 stream, and wall-clock time is the metric.
//!
//! Every thread records what it did and observed as [`TxnRecord`]s over
//! checksummed [`WriteTag`] payloads — the same format the chaos harness
//! uses — and the per-thread records are merged into one [`History`]
//! that feeds the black-box SI-anomaly checker
//! ([`crate::check_anomalies`]). For SIAS engines,
//! [`fill_sias_version_order`] walks the version chains afterwards so
//! the G0 (dirty write) check has the engine's own opinion of each
//! key's committed order.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use sias_common::SiasError;
use sias_core::{MaintenanceConfig, MaintenanceScheduler, MaintenanceTotals, SiasDb};
use sias_txn::MvccEngine;

use crate::check::{HistOp, HistOutcome, History, TxnRecord, WriteTag};

/// Parameters of one threaded run. The same config and seed produce the
/// same *per-thread* operation streams; the cross-thread interleaving is
/// whatever the scheduler does — that nondeterminism is the test.
#[derive(Clone, Debug)]
pub struct ThreadedConfig {
    /// OS threads (terminals) to run.
    pub threads: usize,
    /// Transactions each thread executes.
    pub txns_per_thread: usize,
    /// Shared key-space size; every key is pre-inserted by a setup
    /// transaction so all threads contend on the same rows.
    pub keys: u64,
    /// Operations per transaction (each op reads; some also update).
    pub ops_per_txn: usize,
    /// Percent of operations that follow their read with an update.
    pub update_pct: u32,
    /// Probability (parts per million) of a deliberate client abort at
    /// the end of a transaction.
    pub abort_ppm: u32,
    /// Master seed; thread `i` draws from `splitmix64(seed ^ mix(i))`.
    pub seed: u64,
    /// Upgrade the engine to serializable snapshot isolation before the
    /// contended phase.
    pub serializable: bool,
    /// Constraint-pair mode: each op picks a zipfian-distributed key
    /// *pair* `(2p, 2p+1)`, reads both, and (at `update_pct`) writes one
    /// of them — the write-skew-prone access pattern. Off: independent
    /// uniform single-key read-modify-writes.
    pub constraint_pairs: bool,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig {
            threads: 4,
            txns_per_thread: 64,
            keys: 64,
            ops_per_txn: 4,
            update_pct: 60,
            abort_ppm: 20_000,
            seed: 1,
            serializable: false,
            constraint_pairs: false,
        }
    }
}

/// Outcome of one threaded run.
pub struct ThreadedRun {
    /// Merged history of every thread (checker-compatible; the
    /// `version_order` is empty until [`fill_sias_version_order`]).
    pub history: History,
    /// Transactions acknowledged as committed.
    pub committed: u64,
    /// Transactions aborted (client choice, conflicts, errors).
    pub aborted: u64,
    /// First-updater-wins conflicts encountered.
    pub conflicts: u64,
    /// Serialization-failure aborts the engine reported during the run
    /// (always 0 unless `serializable` was set).
    pub serialization_aborts: u64,
    /// Wall-clock duration of the contended phase (excludes setup).
    pub wall: Duration,
}

impl ThreadedRun {
    /// Committed transactions per wall-clock second.
    pub fn commits_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.committed as f64 / secs
        } else {
            0.0
        }
    }
}

/// splitmix64 — same generator as the chaos harness, one stream per
/// thread.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn chance_ppm(&mut self, ppm: u32) -> bool {
        self.next() % 1_000_000 < u64::from(ppm)
    }

    /// Zipf(s=1) sample over `0..n`: rank `i` drawn with probability
    /// ∝ 1/(i+1). Fixed-point cumulative walk — deterministic, no
    /// floats, n is small (constraint-pair counts).
    fn zipf(&mut self, n: u64) -> u64 {
        let n = n.max(1);
        let total: u64 = (1..=n).map(|i| 1_000_000 / i).sum();
        let mut r = self.next() % total.max(1);
        for i in 0..n {
            let w = 1_000_000 / (i + 1);
            if r < w {
                return i;
            }
            r -= w;
        }
        n - 1
    }
}

/// Runs `cfg.threads` OS threads of read-modify-write transactions over
/// the shared engine's `"threaded"` relation and returns the merged
/// history plus throughput counters. Works against any [`MvccEngine`];
/// the caller owns engine construction so the same driver measures SIAS
/// and the SI baseline.
pub fn drive_threaded<E: MvccEngine + ?Sized>(db: &E, cfg: &ThreadedConfig) -> ThreadedRun {
    let rel = db.create_relation("threaded");
    let mut history = History::default();
    if cfg.serializable {
        db.set_serializable();
    }
    let ser_aborts_base = db.serialization_aborts();

    // Dense acknowledgement order across all threads. The anomaly
    // checker keys on outcomes and tags, not on this sequence, so a
    // post-commit fetch_add is exact enough.
    let commit_seq = AtomicU64::new(0);

    // Setup: every key exists before the contended phase starts.
    {
        let txn = db.begin();
        let xid = txn.xid;
        let mut rec = TxnRecord { xid, ops: Vec::new(), outcome: HistOutcome::Aborted };
        for key in 0..cfg.keys.max(1) {
            let tag = WriteTag { xid, seq: key as u32 };
            db.insert(&txn, rel, key, &tag.encode_payload(key)).expect("setup insert");
            rec.ops.push(HistOp::Write { key, tag });
        }
        db.commit(txn).expect("setup commit");
        rec.outcome = HistOutcome::Committed {
            commit_seq: commit_seq.fetch_add(1, Ordering::Relaxed),
            acked_at_record: 0,
        };
        history.txns.push(rec);
    }

    // Commit latency over wall time, for the time-series sampler: the
    // group-commit force is the dominant term at high thread counts.
    let commit_lat = db.obs_registry().map(|r| r.histogram("workload.threaded.commit_latency"));
    let threads = cfg.threads.max(1);
    let barrier = Barrier::new(threads);
    let start = Instant::now();
    let per_thread: Vec<(Vec<TxnRecord>, u64, u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|ti| {
                let barrier = &barrier;
                let commit_seq = &commit_seq;
                let commit_lat = commit_lat.clone();
                scope.spawn(move || {
                    let mut rng = Rng(cfg.seed ^ (ti as u64).wrapping_mul(0xa076_1d64_78bd_642f));
                    let mut records = Vec::with_capacity(cfg.txns_per_thread);
                    let (mut committed, mut aborted, mut conflicts) = (0u64, 0u64, 0u64);
                    barrier.wait();
                    for _ in 0..cfg.txns_per_thread {
                        let txn = db.begin();
                        let xid = txn.xid;
                        let mut rec =
                            TxnRecord { xid, ops: Vec::new(), outcome: HistOutcome::Aborted };
                        let mut op_seq = 0u32;
                        let mut alive = Some(txn);
                        'ops: for _ in 0..cfg.ops_per_txn {
                            if alive.is_none() {
                                break;
                            }
                            // Key set of this op: one uniform key, or a
                            // zipfian constraint pair (both read, one
                            // written) in pair mode.
                            let keys = cfg.keys.max(1);
                            let (reads, write_key) = if cfg.constraint_pairs && keys >= 2 {
                                let p = rng.zipf(keys / 2);
                                let (k0, k1) = (2 * p, 2 * p + 1);
                                let wk = if rng.next().is_multiple_of(2) { k0 } else { k1 };
                                (vec![k0, k1], wk)
                            } else {
                                let key = rng.next() % keys;
                                (vec![key], key)
                            };
                            for key in reads {
                                let txn = alive.as_ref().expect("txn alive in op loop");
                                let observed = match db.get(txn, rel, key) {
                                    Ok(Some(bytes)) => {
                                        let (k, tag) = WriteTag::decode_payload(&bytes)
                                            .expect("threaded payloads are checksummed tags");
                                        assert_eq!(k, key, "payload key mismatch");
                                        Some(tag)
                                    }
                                    Ok(None) => None,
                                    Err(_) => {
                                        db.abort(alive.take().unwrap());
                                        aborted += 1;
                                        break 'ops;
                                    }
                                };
                                rec.ops.push(HistOp::Read { key, observed });
                            }
                            if rng.next() % 100 >= u64::from(cfg.update_pct) {
                                continue;
                            }
                            let txn = alive.as_ref().expect("txn alive in op loop");
                            let tag = WriteTag { xid, seq: op_seq };
                            op_seq += 1;
                            match db.update(txn, rel, write_key, &tag.encode_payload(write_key)) {
                                Ok(()) => rec.ops.push(HistOp::Write { key: write_key, tag }),
                                Err(e) => {
                                    if matches!(e, SiasError::WriteConflict { .. }) {
                                        conflicts += 1;
                                    }
                                    db.abort(alive.take().unwrap());
                                    aborted += 1;
                                }
                            }
                        }
                        if let Some(txn) = alive {
                            if rng.chance_ppm(cfg.abort_ppm) {
                                db.abort(txn);
                                aborted += 1;
                            } else {
                                let commit_start = Instant::now();
                                let res = db.commit(txn);
                                if let Some(h) = &commit_lat {
                                    h.record_duration(commit_start.elapsed());
                                }
                                match res {
                                    Ok(()) => {
                                        rec.outcome = HistOutcome::Committed {
                                            commit_seq: commit_seq.fetch_add(1, Ordering::Relaxed),
                                            acked_at_record: 0,
                                        };
                                        committed += 1;
                                    }
                                    // A commit-time serialization abort
                                    // is a definitive abort, not an
                                    // uncertain outcome.
                                    Err(SiasError::SerializationFailure(_)) => {
                                        rec.outcome = HistOutcome::Aborted;
                                        aborted += 1;
                                    }
                                    Err(_) => rec.outcome = HistOutcome::Unacked,
                                }
                            }
                        }
                        records.push(rec);
                    }
                    (records, committed, aborted, conflicts)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("terminal thread")).collect()
    });
    let wall = start.elapsed();

    let (mut committed, mut aborted, mut conflicts) = (1u64, 0u64, 0u64); // setup committed
    for (records, c, a, w) in per_thread {
        history.txns.extend(records);
        committed += c;
        aborted += a;
        conflicts += w;
    }
    let serialization_aborts = db.serialization_aborts().saturating_sub(ser_aborts_base);

    ThreadedRun { history, committed, aborted, conflicts, serialization_aborts, wall }
}

/// Fills `history.version_order` from a SIAS engine's own version
/// chains (oldest-first per key), enabling the G0 check on a history
/// produced by [`drive_threaded`]. SI chains are not walkable from the
/// outside, which is why this is SIAS-specific.
pub fn fill_sias_version_order(db: &SiasDb, history: &mut History) {
    history.version_order =
        crate::chaos::extract_version_order(db, "threaded", &history.committed());
}

/// [`drive_threaded`] with the online-maintenance scheduler running for
/// the duration of the contended phase: incremental GC, scrub slices
/// and WAL-paced checkpoints all compete with the foreground threads.
/// Returns the run plus the maintenance work totals — the pairing the
/// `maintbench` binary sweeps to price background maintenance in
/// foreground tail latency.
pub fn drive_threaded_with_maintenance(
    db: &Arc<SiasDb>,
    cfg: &ThreadedConfig,
    maint: MaintenanceConfig,
) -> (ThreadedRun, MaintenanceTotals) {
    let sched = MaintenanceScheduler::spawn(Arc::clone(db), maint);
    let run = drive_threaded(db.as_ref(), cfg);
    let totals = sched.stop();
    (run, totals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_anomalies;
    use sias_storage::{StorageConfig, WalConfig};

    #[test]
    fn threaded_run_commits_and_merges_all_records() {
        let db = SiasDb::open(StorageConfig::in_memory());
        let cfg = ThreadedConfig { threads: 4, txns_per_thread: 16, ..Default::default() };
        let run = drive_threaded(&db, &cfg);
        assert_eq!(run.history.txns.len() as u64, 1 + 4 * 16);
        assert!(run.committed > 4, "some transactions committed: {}", run.committed);
        assert_eq!(
            run.committed
                + run.aborted
                + run.history.txns.iter().filter(|t| t.outcome == HistOutcome::Unacked).count()
                    as u64,
            1 + 4 * 16
        );
    }

    #[test]
    fn threaded_history_passes_the_anomaly_checker() {
        let db = SiasDb::open(StorageConfig::in_memory().with_wal_config(WalConfig {
            group_timeout_ticks: 8,
            max_batch: 16,
            force_sleep_us: 0,
        }));
        let cfg = ThreadedConfig { threads: 4, txns_per_thread: 24, ..Default::default() };
        let mut run = drive_threaded(&db, &cfg);
        fill_sias_version_order(&db, &mut run.history);
        assert!(!run.history.version_order.is_empty());
        let v = check_anomalies(&run.history);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn per_thread_streams_are_deterministic() {
        // Same seed: every thread issues the same key/op sequence, so
        // total op counts per thread match across runs even though the
        // interleaving differs.
        let ops_of = |seed: u64| {
            let db = SiasDb::open(StorageConfig::in_memory());
            let cfg = ThreadedConfig {
                threads: 2,
                txns_per_thread: 8,
                update_pct: 0, // reads only: no conflict-dependent aborts
                abort_ppm: 0,
                seed,
                ..Default::default()
            };
            let run = drive_threaded(&db, &cfg);
            run.history.txns.iter().map(|t| t.ops.len()).sum::<usize>()
        };
        assert_eq!(ops_of(7), ops_of(7));
    }

    #[test]
    fn maintenance_under_threaded_load_is_anomaly_free() {
        let db = Arc::new(SiasDb::open(StorageConfig::in_memory()));
        let cfg = ThreadedConfig {
            threads: 4,
            txns_per_thread: 48,
            update_pct: 80, // garbage-heavy so GC has real work
            ..Default::default()
        };
        let maint = MaintenanceConfig::for_db(&db).with_pages_per_sec(0);
        let (mut run, totals) = drive_threaded_with_maintenance(&db, &cfg, maint);
        assert!(run.committed > 4, "commits under maintenance: {}", run.committed);
        assert_eq!(totals.errors, 0, "maintenance slices must not fail: {totals:?}");
        assert!(totals.ticks > 0, "scheduler must have run: {totals:?}");
        fill_sias_version_order(&db, &mut run.history);
        let v = check_anomalies(&run.history);
        assert!(v.is_empty(), "maintenance must not perturb SI: {v:?}");
        let rel = db.relation("threaded").unwrap();
        db.debug_validate_index(rel).unwrap();
    }
}
