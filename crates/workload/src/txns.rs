//! The five TPC-C transaction profiles, engine-agnostic.
//!
//! Each profile runs against any [`MvccEngine`], so SIAS and the SI
//! baseline execute byte-identical logical work. Simplifications relative
//! to the full specification (noted in DESIGN.md): customers are always
//! selected by id (no last-name path), and the 15 % remote-warehouse
//! payment rule is kept but remote new-order lines use the standard 1 %
//! probability.

use rand::rngs::StdRng;
use sias_common::{SiasError, SiasResult};
use sias_txn::MvccEngine;

use crate::config::{Tables, TpccConfig};
use crate::keys;
use crate::loader::next_history_key;
use crate::random::{nurand, nurand_a, uniform};
use crate::schema::*;

/// Transaction type tags, with the standard DBT2 mix weights.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TxnKind {
    /// ~45 % of the mix; the throughput metric counts these.
    NewOrder,
    /// ~43 %.
    Payment,
    /// ~4 %, read-only.
    OrderStatus,
    /// ~4 %.
    Delivery,
    /// ~4 %, read-only.
    StockLevel,
}

impl TxnKind {
    /// Draws a transaction type with the standard 45/43/4/4/4 mix.
    pub fn draw(rng: &mut StdRng) -> TxnKind {
        match uniform(rng, 1, 100) {
            1..=45 => TxnKind::NewOrder,
            46..=88 => TxnKind::Payment,
            89..=92 => TxnKind::OrderStatus,
            93..=96 => TxnKind::Delivery,
            _ => TxnKind::StockLevel,
        }
    }

    /// All five kinds.
    pub const ALL: [TxnKind; 5] = [
        TxnKind::NewOrder,
        TxnKind::Payment,
        TxnKind::OrderStatus,
        TxnKind::Delivery,
        TxnKind::StockLevel,
    ];
}

/// Outcome of one executed transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Committed normally.
    Committed,
    /// Intentional rollback (the 1 % invalid-item new-orders).
    RolledBack,
    /// Aborted on a write-write conflict (first-updater-wins).
    Conflicted,
}

/// Executes one transaction of `kind` homed at warehouse `w`.
pub fn run_txn<E: MvccEngine + ?Sized>(
    engine: &E,
    tables: &Tables,
    cfg: &TpccConfig,
    rng: &mut StdRng,
    kind: TxnKind,
    w: u32,
    now_us: u64,
) -> SiasResult<Outcome> {
    let result = match kind {
        TxnKind::NewOrder => new_order(engine, tables, cfg, rng, w, now_us),
        TxnKind::Payment => payment(engine, tables, cfg, rng, w, now_us),
        TxnKind::OrderStatus => order_status(engine, tables, cfg, rng, w),
        TxnKind::Delivery => delivery(engine, tables, cfg, rng, w, now_us),
        TxnKind::StockLevel => stock_level(engine, tables, cfg, rng, w),
    };
    match result {
        Ok(outcome) => Ok(outcome),
        // SSI pivot aborts are retryable exactly like first-updater-wins
        // conflicts; the profile helpers abort the txn before erroring
        // (commit-time failures abort inside the engine), so by here the
        // transaction is gone either way.
        Err(SiasError::WriteConflict { .. }) | Err(SiasError::SerializationFailure(_)) => {
            Ok(Outcome::Conflicted)
        }
        Err(e) => Err(e),
    }
}

fn pick_customer(cfg: &TpccConfig, rng: &mut StdRng) -> u32 {
    let a = nurand_a(cfg.customers_per_district as u64);
    nurand(rng, a, 1, cfg.customers_per_district as u64, cfg.seed % 1024) as u32
}

fn pick_item(cfg: &TpccConfig, rng: &mut StdRng) -> u32 {
    let a = nurand_a(cfg.items as u64);
    nurand(rng, a, 1, cfg.items as u64, cfg.seed % 8192) as u32
}

/// The New-Order transaction (spec §2.4).
fn new_order<E: MvccEngine + ?Sized>(
    engine: &E,
    tables: &Tables,
    cfg: &TpccConfig,
    rng: &mut StdRng,
    w: u32,
    now_us: u64,
) -> SiasResult<Outcome> {
    let d = uniform(rng, 1, cfg.districts_per_warehouse as u64) as u32;
    let c = pick_customer(cfg, rng);
    let ol_cnt = uniform(rng, 5, 15) as u32;
    // 1 % of new-orders roll back on an unused item id (spec §2.4.1.4).
    let rollback = uniform(rng, 1, 100) == 1;

    let t = engine.begin();
    let run = (|| -> SiasResult<Outcome> {
        // Warehouse tax (read).
        let _wh = Warehouse::decode(
            &engine
                .get(&t, tables.warehouse, keys::warehouse(w))?
                .ok_or(SiasError::KeyNotFound(w as u64))?,
        )?;
        // District: read + increment next_o_id.
        let dk = keys::district(w, d);
        let mut dist = District::decode(
            &engine.get(&t, tables.district, dk)?.ok_or(SiasError::KeyNotFound(dk))?,
        )?;
        let o_id = dist.next_o_id;
        dist.next_o_id += 1;
        engine.update(&t, tables.district, dk, &dist.encode())?;
        // Customer discount (read).
        let ck = keys::customer(w, d, c);
        let _cust = Customer::decode(
            &engine.get(&t, tables.customer, ck)?.ok_or(SiasError::KeyNotFound(ck))?,
        )?;
        // Insert ORDER and NEW_ORDER.
        let order =
            Order { w_id: w, d_id: d, o_id, c_id: c, entry_d: now_us, carrier_id: 0, ol_cnt };
        engine.insert(&t, tables.orders, keys::order(w, d, o_id), &order.encode())?;
        let no = NewOrderRow { w_id: w, d_id: d, o_id };
        engine.insert(&t, tables.new_order, keys::order(w, d, o_id), &no.encode())?;
        // Lines.
        for l in 1..=ol_cnt {
            if rollback && l == ol_cnt {
                return Ok(Outcome::RolledBack);
            }
            let i = pick_item(cfg, rng);
            // 1 % of lines come from a remote warehouse.
            let supply_w = if cfg.warehouses > 1 && uniform(rng, 1, 100) == 1 {
                let mut rw = uniform(rng, 1, cfg.warehouses as u64) as u32;
                if rw == w {
                    rw = rw % cfg.warehouses + 1;
                }
                rw
            } else {
                w
            };
            let ik = keys::item(i);
            let item =
                Item::decode(&engine.get(&t, tables.item, ik)?.ok_or(SiasError::KeyNotFound(ik))?)?;
            // Stock read-modify-write.
            let sk = keys::stock(supply_w, i);
            let mut stock = Stock::decode(
                &engine.get(&t, tables.stock, sk)?.ok_or(SiasError::KeyNotFound(sk))?,
            )?;
            let qty = uniform(rng, 1, 10) as i32;
            stock.quantity -= qty;
            if stock.quantity < 10 {
                stock.quantity += 91;
            }
            stock.ytd += qty as u32;
            stock.order_cnt += 1;
            if supply_w != w {
                stock.remote_cnt += 1;
            }
            engine.update(&t, tables.stock, sk, &stock.encode())?;
            let ol = OrderLine {
                i_id: i,
                supply_w_id: supply_w,
                quantity: qty as u32,
                amount: qty as u32 * item.price,
                delivery_d: 0,
            };
            engine.insert(&t, tables.order_line, keys::order_line(w, d, o_id, l), &ol.encode())?;
        }
        Ok(Outcome::Committed)
    })();
    match run {
        Ok(Outcome::Committed) => {
            engine.commit(t)?;
            Ok(Outcome::Committed)
        }
        Ok(other) => {
            engine.abort(t);
            Ok(other)
        }
        Err(e) => {
            engine.abort(t);
            Err(e)
        }
    }
}

/// The Payment transaction (spec §2.5).
fn payment<E: MvccEngine + ?Sized>(
    engine: &E,
    tables: &Tables,
    cfg: &TpccConfig,
    rng: &mut StdRng,
    w: u32,
    now_us: u64,
) -> SiasResult<Outcome> {
    let d = uniform(rng, 1, cfg.districts_per_warehouse as u64) as u32;
    // 15 % of payments are made by a customer of a remote warehouse.
    let (cw, cd) = if cfg.warehouses > 1 && uniform(rng, 1, 100) <= 15 {
        let mut rw = uniform(rng, 1, cfg.warehouses as u64) as u32;
        if rw == w {
            rw = rw % cfg.warehouses + 1;
        }
        (rw, uniform(rng, 1, cfg.districts_per_warehouse as u64) as u32)
    } else {
        (w, d)
    };
    let c = pick_customer(cfg, rng);
    let amount = uniform(rng, 100, 500_000) as u32;

    let t = engine.begin();
    let run = (|| -> SiasResult<()> {
        let wk = keys::warehouse(w);
        let mut wh = Warehouse::decode(
            &engine.get(&t, tables.warehouse, wk)?.ok_or(SiasError::KeyNotFound(wk))?,
        )?;
        wh.ytd += amount as i64;
        engine.update(&t, tables.warehouse, wk, &wh.encode())?;

        let dk = keys::district(w, d);
        let mut dist = District::decode(
            &engine.get(&t, tables.district, dk)?.ok_or(SiasError::KeyNotFound(dk))?,
        )?;
        dist.ytd += amount as i64;
        engine.update(&t, tables.district, dk, &dist.encode())?;

        let ck = keys::customer(cw, cd, c);
        let mut cust = Customer::decode(
            &engine.get(&t, tables.customer, ck)?.ok_or(SiasError::KeyNotFound(ck))?,
        )?;
        cust.balance -= amount as i64;
        cust.ytd_payment += amount as i64;
        cust.payment_cnt += 1;
        engine.update(&t, tables.customer, ck, &cust.encode())?;

        let h = History { w_id: cw, d_id: cd, c_id: c, amount, date: now_us };
        engine.insert(&t, tables.history, next_history_key(), &h.encode())?;
        Ok(())
    })();
    match run {
        Ok(()) => {
            engine.commit(t)?;
            Ok(Outcome::Committed)
        }
        Err(e) => {
            engine.abort(t);
            Err(e)
        }
    }
}

/// The Order-Status transaction (spec §2.6; read-only).
fn order_status<E: MvccEngine + ?Sized>(
    engine: &E,
    tables: &Tables,
    cfg: &TpccConfig,
    rng: &mut StdRng,
    w: u32,
) -> SiasResult<Outcome> {
    let d = uniform(rng, 1, cfg.districts_per_warehouse as u64) as u32;
    let c = pick_customer(cfg, rng);
    let t = engine.begin();
    let run = (|| -> SiasResult<()> {
        let ck = keys::customer(w, d, c);
        let _cust = Customer::decode(
            &engine.get(&t, tables.customer, ck)?.ok_or(SiasError::KeyNotFound(ck))?,
        )?;
        // Most recent order of this customer: scan back over the last
        // orders of the district.
        let dk = keys::district(w, d);
        let dist = District::decode(
            &engine.get(&t, tables.district, dk)?.ok_or(SiasError::KeyNotFound(dk))?,
        )?;
        let from = dist.next_o_id.saturating_sub(40).max(1);
        let orders = engine.scan_range(
            &t,
            tables.orders,
            keys::order(w, d, from),
            keys::order(w, d, dist.next_o_id),
        )?;
        let last = orders
            .iter()
            .rev()
            .map(|(_, bytes)| Order::decode(bytes))
            .collect::<SiasResult<Vec<_>>>()?
            .into_iter()
            .find(|o| o.c_id == c);
        if let Some(order) = last {
            // Read its lines.
            let lo = keys::order_line(w, d, order.o_id, 0);
            let hi = keys::order_line(w, d, order.o_id, 15);
            let _lines = engine.scan_range(&t, tables.order_line, lo, hi)?;
        }
        Ok(())
    })();
    match run {
        Ok(()) => {
            engine.commit(t)?;
            Ok(Outcome::Committed)
        }
        Err(e) => {
            engine.abort(t);
            Err(e)
        }
    }
}

/// The Delivery transaction (spec §2.7): delivers the oldest undelivered
/// order of every district of the warehouse.
fn delivery<E: MvccEngine + ?Sized>(
    engine: &E,
    tables: &Tables,
    cfg: &TpccConfig,
    rng: &mut StdRng,
    w: u32,
    now_us: u64,
) -> SiasResult<Outcome> {
    let carrier = uniform(rng, 1, 10) as u32;
    let t = engine.begin();
    let run = (|| -> SiasResult<()> {
        for d in 1..=cfg.districts_per_warehouse {
            // Oldest undelivered order of the district.
            let lo = keys::order(w, d, 0);
            let hi = keys::order(w, d, u32::MAX >> 8);
            let pending = engine.scan_range(&t, tables.new_order, lo, hi)?;
            let Some((no_key, bytes)) = pending.first() else { continue };
            let no = NewOrderRow::decode(bytes)?;
            engine.delete(&t, tables.new_order, *no_key)?;
            // Stamp the carrier on the order.
            let ok = keys::order(w, d, no.o_id);
            let mut order = Order::decode(
                &engine.get(&t, tables.orders, ok)?.ok_or(SiasError::KeyNotFound(ok))?,
            )?;
            order.carrier_id = carrier;
            engine.update(&t, tables.orders, ok, &order.encode())?;
            // Deliver the lines, summing amounts.
            let mut total = 0u64;
            for l in 1..=order.ol_cnt {
                let olk = keys::order_line(w, d, no.o_id, l);
                let Some(bytes) = engine.get(&t, tables.order_line, olk)? else { continue };
                let mut ol = OrderLine::decode(&bytes)?;
                total += ol.amount as u64;
                ol.delivery_d = now_us;
                engine.update(&t, tables.order_line, olk, &ol.encode())?;
            }
            // Credit the customer.
            let ck = keys::customer(w, d, order.c_id);
            let mut cust = Customer::decode(
                &engine.get(&t, tables.customer, ck)?.ok_or(SiasError::KeyNotFound(ck))?,
            )?;
            cust.balance += total as i64;
            cust.delivery_cnt += 1;
            engine.update(&t, tables.customer, ck, &cust.encode())?;
        }
        Ok(())
    })();
    match run {
        Ok(()) => {
            engine.commit(t)?;
            Ok(Outcome::Committed)
        }
        Err(e) => {
            engine.abort(t);
            Err(e)
        }
    }
}

/// The Stock-Level transaction (spec §2.8; read-only).
fn stock_level<E: MvccEngine + ?Sized>(
    engine: &E,
    tables: &Tables,
    cfg: &TpccConfig,
    rng: &mut StdRng,
    w: u32,
) -> SiasResult<Outcome> {
    let d = uniform(rng, 1, cfg.districts_per_warehouse as u64) as u32;
    let threshold = uniform(rng, 10, 20) as i32;
    let t = engine.begin();
    let run = (|| -> SiasResult<()> {
        let dk = keys::district(w, d);
        let dist = District::decode(
            &engine.get(&t, tables.district, dk)?.ok_or(SiasError::KeyNotFound(dk))?,
        )?;
        // Lines of the last 20 orders.
        let from = dist.next_o_id.saturating_sub(20).max(1);
        let lo = keys::order_line(w, d, from, 0);
        let hi = keys::order_line(w, d, dist.next_o_id, 15);
        let lines = engine.scan_range(&t, tables.order_line, lo, hi)?;
        let mut items = std::collections::BTreeSet::new();
        for (_, bytes) in &lines {
            items.insert(OrderLine::decode(bytes)?.i_id);
        }
        let mut low = 0;
        for i in items {
            let sk = keys::stock(w, i);
            if let Some(bytes) = engine.get(&t, tables.stock, sk)? {
                if Stock::decode(&bytes)?.quantity < threshold {
                    low += 1;
                }
            }
        }
        let _ = low;
        Ok(())
    })();
    match run {
        Ok(()) => {
            engine.commit(t)?;
            Ok(Outcome::Committed)
        }
        Err(e) => {
            engine.abort(t);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::load;
    use rand::SeedableRng;
    use sias_core::SiasDb;
    use sias_si::SiDb;
    use sias_storage::StorageConfig;

    fn run_mix<E: MvccEngine>(engine: &E) -> (u64, u64, u64) {
        let cfg = TpccConfig::tiny();
        let tables = load(engine, &cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let (mut committed, mut rolled_back, mut conflicted) = (0, 0, 0);
        for i in 0..300u64 {
            let kind = TxnKind::draw(&mut rng);
            let w = (i % cfg.warehouses as u64) as u32 + 1;
            match run_txn(engine, &tables, &cfg, &mut rng, kind, w, i * 1000).unwrap() {
                Outcome::Committed => committed += 1,
                Outcome::RolledBack => rolled_back += 1,
                Outcome::Conflicted => conflicted += 1,
            }
        }
        (committed, rolled_back, conflicted)
    }

    #[test]
    fn mix_runs_on_sias() {
        let db = SiasDb::open(StorageConfig::in_memory());
        let (committed, _rb, conflicted) = run_mix(&db);
        assert!(committed > 250, "committed {committed}");
        assert_eq!(conflicted, 0, "single terminal cannot conflict");
    }

    #[test]
    fn mix_runs_on_si() {
        let db = SiDb::open(StorageConfig::in_memory());
        let (committed, _rb, conflicted) = run_mix(&db);
        assert!(committed > 250, "committed {committed}");
        assert_eq!(conflicted, 0);
    }

    #[test]
    fn mix_weights_are_standard() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..100_000 {
            *counts.entry(TxnKind::draw(&mut rng)).or_insert(0u64) += 1;
        }
        let pct = |k| *counts.get(&k).unwrap_or(&0) as f64 / 1000.0;
        assert!((pct(TxnKind::NewOrder) - 45.0).abs() < 1.5);
        assert!((pct(TxnKind::Payment) - 43.0).abs() < 1.5);
        assert!((pct(TxnKind::OrderStatus) - 4.0).abs() < 1.0);
        assert!((pct(TxnKind::Delivery) - 4.0).abs() < 1.0);
        assert!((pct(TxnKind::StockLevel) - 4.0).abs() < 1.0);
    }

    #[test]
    fn new_order_advances_district_sequence() {
        let db = SiasDb::open(StorageConfig::in_memory());
        let cfg = TpccConfig::tiny();
        let tables = load(&db, &cfg).unwrap();
        let before = {
            let t = db.begin();
            let d = District::decode(
                &db.get(&t, tables.district, keys::district(1, 1)).unwrap().unwrap(),
            )
            .unwrap();
            db.commit(t).unwrap();
            d.next_o_id
        };
        let mut rng = StdRng::seed_from_u64(1);
        let mut advanced = 0;
        for i in 0..40 {
            if run_txn(&db, &tables, &cfg, &mut rng, TxnKind::NewOrder, 1, i).unwrap()
                == Outcome::Committed
            {
                advanced += 1;
            }
        }
        let t = db.begin();
        let mut total_after = 0;
        for d in 1..=cfg.districts_per_warehouse {
            let dist = District::decode(
                &db.get(&t, tables.district, keys::district(1, d)).unwrap().unwrap(),
            )
            .unwrap();
            total_after += dist.next_o_id;
        }
        db.commit(t).unwrap();
        let total_before = before * cfg.districts_per_warehouse; // uniform start
        assert_eq!(total_after - total_before, advanced);
    }

    #[test]
    fn delivery_drains_new_orders() {
        let db = SiasDb::open(StorageConfig::in_memory());
        let cfg = TpccConfig::tiny();
        let tables = load(&db, &cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let backlog_before = {
            let t = db.begin();
            let n = db.scan_all(&t, tables.new_order).unwrap().len();
            db.commit(t).unwrap();
            n
        };
        assert!(backlog_before > 0);
        for w in 1..=cfg.warehouses {
            for _ in 0..5 {
                run_txn(&db, &tables, &cfg, &mut rng, TxnKind::Delivery, w, 1).unwrap();
            }
        }
        let t = db.begin();
        let backlog_after = db.scan_all(&t, tables.new_order).unwrap().len();
        db.commit(t).unwrap();
        assert_eq!(backlog_after, 0, "all initial orders delivered");
    }
}
