//! Workload scale configuration.

use sias_common::RelId;
use sias_txn::MvccEngine;

/// TPC-C scale parameters.
///
/// Per-warehouse cardinalities are scaled down from the specification
/// (3000 customers/district, 100 000 items) so that multi-hundred-
/// warehouse simulated runs stay laptop-sized; the table-size *ratios*
/// and the update profile of the transaction mix are preserved. The
/// defaults give roughly 300 KiB of initial data per warehouse.
#[derive(Clone, Debug)]
pub struct TpccConfig {
    /// Number of warehouses (the TPC-C scaling factor).
    pub warehouses: u32,
    /// Districts per warehouse (spec: 10).
    pub districts_per_warehouse: u32,
    /// Customers per district (spec: 3000; scaled default 60).
    pub customers_per_district: u32,
    /// Catalogue size (spec: 100 000; scaled default 1000).
    pub items: u32,
    /// Initial delivered+undelivered orders per district (spec: 3000;
    /// scaled default 30).
    pub initial_orders_per_district: u32,
    /// C_DATA filler length per customer row.
    pub customer_data_len: u32,
    /// S_DATA + S_DIST filler length per stock row.
    pub stock_data_len: u32,
    /// Deterministic seed for loading and NURand constants.
    pub seed: u64,
}

impl TpccConfig {
    /// Scaled configuration with `warehouses` warehouses.
    pub fn scaled(warehouses: u32) -> Self {
        TpccConfig {
            warehouses,
            districts_per_warehouse: 10,
            customers_per_district: 60,
            items: 1000,
            initial_orders_per_district: 30,
            customer_data_len: 120,
            stock_data_len: 80,
            seed: 0x51A5_C41A,
        }
    }

    /// Tiny configuration for unit tests.
    pub fn tiny() -> Self {
        TpccConfig {
            warehouses: 2,
            districts_per_warehouse: 2,
            customers_per_district: 10,
            items: 50,
            initial_orders_per_district: 5,
            customer_data_len: 40,
            stock_data_len: 30,
            seed: 7,
        }
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Relation ids of the nine TPC-C tables in an engine.
#[derive(Clone, Copy, Debug)]
pub struct Tables {
    /// WAREHOUSE.
    pub warehouse: RelId,
    /// DISTRICT.
    pub district: RelId,
    /// CUSTOMER.
    pub customer: RelId,
    /// HISTORY.
    pub history: RelId,
    /// NEW_ORDER.
    pub new_order: RelId,
    /// ORDERS.
    pub orders: RelId,
    /// ORDER_LINE.
    pub order_line: RelId,
    /// ITEM.
    pub item: RelId,
    /// STOCK.
    pub stock: RelId,
}

impl Tables {
    /// Creates (or resolves) all nine relations in an engine.
    pub fn create<E: MvccEngine + ?Sized>(engine: &E) -> Tables {
        Tables {
            warehouse: engine.create_relation("warehouse"),
            district: engine.create_relation("district"),
            customer: engine.create_relation("customer"),
            history: engine.create_relation("history"),
            new_order: engine.create_relation("new_order"),
            orders: engine.create_relation("orders"),
            order_line: engine.create_relation("order_line"),
            item: engine.create_relation("item"),
            stock: engine.create_relation("stock"),
        }
    }
}
