//! TPC-C-style workload for the SIAS evaluation.
//!
//! The paper evaluates with DBT2, the open-source TPC-C implementation,
//! at varying warehouse scales. This crate rebuilds that harness:
//!
//! * [`schema`] — the nine TPC-C tables with compact fixed layouts;
//! * [`keys`] — composite-key packing into the engines' `u64` keys;
//! * [`random`] — uniform + NURand skew;
//! * [`config`] — scale parameters (warehouses, scaled cardinalities);
//! * [`loader`] — initial population;
//! * [`txns`] — the five transaction profiles at the standard mix;
//! * [`driver`] — the multi-terminal discrete-event driver reporting
//!   NOTPM and response times;
//! * [`check`] — TPC-C consistency conditions plus a black-box
//!   SI-anomaly and durability checker;
//! * [`chaos`] — deterministic fault-injection harness: a seeded
//!   multi-terminal workload over tagged keys, crashed at every Nth
//!   WAL-record boundary and recovered, with the pre-crash history fed
//!   to the checker;
//! * [`threaded`] — real OS-thread driver over one shared engine,
//!   measuring wall-clock multi-core throughput and producing merged
//!   checker-compatible histories.
//!
//! Everything is generic over [`sias_txn::MvccEngine`], so SIAS and the
//! SI baseline run byte-identical logical work.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod check;
pub mod config;
pub mod driver;
pub mod keys;
pub mod loader;
pub mod random;
pub mod schema;
pub mod threaded;
pub mod txns;

pub use chaos::{
    crash_matrix, enospc_scenario, gc_crash_scenario, run_chaos, scrub_scenario,
    write_skew_scenario, ChaosConfig, ChaosRun, CrashMatrixReport, EnospcReport, GcCrashReport,
    ScrubReport, WriteSkewReport,
};
pub use check::{
    check_anomalies, check_consistency, check_durability, check_serializability, DurabilityInput,
    History, Violation, WriteTag,
};
pub use config::{Tables, TpccConfig};
pub use driver::{run_benchmark, BenchResult, DriverConfig};
pub use loader::load;
pub use threaded::{
    drive_threaded, drive_threaded_with_maintenance, fill_sias_version_order, ThreadedConfig,
    ThreadedRun,
};
pub use txns::{run_txn, Outcome, TxnKind};
