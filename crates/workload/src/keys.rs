//! Key packing for the TPC-C schema.
//!
//! The engines address rows by one `u64` key per relation; TPC-C's
//! composite primary keys are bit-packed:
//!
//! ```text
//! warehouse   ⟨w⟩                =  w
//! district    ⟨w, d⟩             =  w·2⁸  | d
//! customer    ⟨w, d, c⟩          =  district ·2¹⁶ | c
//! order       ⟨w, d, o⟩          =  district ·2²⁴ | o
//! new_order   ⟨w, d, o⟩          =  order key
//! order_line  ⟨w, d, o, number⟩  =  order ·2⁴ | number
//! item        ⟨i⟩                =  i
//! stock       ⟨w, i⟩             =  w·2²⁴ | i
//! history     running sequence
//! ```
//!
//! The layouts keep same-district orders contiguous, so "oldest
//! undelivered order" (Delivery) and "last 20 orders" (StockLevel) are
//! range scans, exactly as in the SQL schema with its composite B-tree
//! keys.

/// Warehouse id (1-based) to key.
pub fn warehouse(w: u32) -> u64 {
    w as u64
}

/// District key.
pub fn district(w: u32, d: u32) -> u64 {
    ((w as u64) << 8) | d as u64
}

/// Customer key.
pub fn customer(w: u32, d: u32, c: u32) -> u64 {
    (district(w, d) << 16) | c as u64
}

/// Order key.
pub fn order(w: u32, d: u32, o: u32) -> u64 {
    (district(w, d) << 24) | o as u64
}

/// Order-line key.
pub fn order_line(w: u32, d: u32, o: u32, number: u32) -> u64 {
    (order(w, d, o) << 4) | number as u64
}

/// Item key.
pub fn item(i: u32) -> u64 {
    i as u64
}

/// Stock key.
pub fn stock(w: u32, i: u32) -> u64 {
    ((w as u64) << 24) | i as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_injective_within_reasonable_scales() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for w in 1..=3u32 {
            assert!(seen.insert(("w", warehouse(w))));
            for d in 1..=10u32 {
                assert!(seen.insert(("d", district(w, d))));
                for c in 1..=30u32 {
                    assert!(seen.insert(("c", customer(w, d, c))));
                }
                for o in 1..=30u32 {
                    assert!(seen.insert(("o", order(w, d, o))));
                    for l in 1..=15u32 {
                        assert!(seen.insert(("ol", order_line(w, d, o, l))));
                    }
                }
            }
        }
    }

    #[test]
    fn order_keys_of_one_district_are_contiguous() {
        // Delivery / StockLevel rely on range scans over o_id.
        let lo = order(5, 3, 10);
        let hi = order(5, 3, 20);
        for o in 10..=20u32 {
            let k = order(5, 3, o);
            assert!(k >= lo && k <= hi);
        }
        // Neighbouring districts do not fall into the range.
        assert!(order(5, 4, 1) > hi || order(5, 4, 1) < lo);
        assert!(order(5, 2, 30) < lo);
    }

    #[test]
    fn order_line_ranges_nest_inside_order() {
        let o = order(1, 1, 7);
        for l in 0..16u32 {
            let k = order_line(1, 1, 7, l);
            assert_eq!(k >> 4, o);
        }
    }
}
