//! TPC-C-style schema records.
//!
//! The nine TPC-C tables, with compact fixed-layout serialization.
//! Record footprints are scaled down relative to the specification
//! (configurable filler lengths) so that simulated multi-hundred-warehouse
//! runs stay laptop-sized; the *ratios* between tables and the
//! update-intensity of the workload are preserved.

use sias_common::{SiasError, SiasResult};

/// Little-endian field writer.
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates a writer with some capacity.
    pub fn new(cap: usize) -> Self {
        Writer { buf: Vec::with_capacity(cap) }
    }

    /// Appends a u8.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a u32.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends an i64.
    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a u64.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends `n` filler bytes.
    pub fn filler(&mut self, n: usize) -> &mut Self {
        self.buf.resize(self.buf.len() + n, 0x5F);
        self
    }

    /// Finishes.
    pub fn done(self) -> Vec<u8> {
        self.buf
    }
}

/// Little-endian field reader.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> SiasResult<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(SiasError::Device("truncated record".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a u8.
    pub fn u8(&mut self) -> SiasResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a u32.
    pub fn u32(&mut self) -> SiasResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads an i64.
    pub fn i64(&mut self) -> SiasResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a u64.
    pub fn u64(&mut self) -> SiasResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Skips filler.
    pub fn skip(&mut self, n: usize) -> SiasResult<()> {
        self.take(n).map(|_| ())
    }
}

/// WAREHOUSE row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Warehouse {
    /// Warehouse id.
    pub id: u32,
    /// Year-to-date balance, in cents.
    pub ytd: i64,
    /// Tax rate in basis points.
    pub tax: u32,
}

impl Warehouse {
    /// Serializes (with address filler approximating the spec row).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new(64);
        w.u32(self.id).i64(self.ytd).u32(self.tax).filler(48);
        w.done()
    }

    /// Deserializes.
    pub fn decode(buf: &[u8]) -> SiasResult<Self> {
        let mut r = Reader::new(buf);
        Ok(Warehouse { id: r.u32()?, ytd: r.i64()?, tax: r.u32()? })
    }
}

/// DISTRICT row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct District {
    /// Warehouse id.
    pub w_id: u32,
    /// District id.
    pub d_id: u32,
    /// Next order number to assign.
    pub next_o_id: u32,
    /// Year-to-date balance, cents.
    pub ytd: i64,
    /// Tax rate in basis points.
    pub tax: u32,
}

impl District {
    /// Serializes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new(72);
        w.u32(self.w_id).u32(self.d_id).u32(self.next_o_id).i64(self.ytd).u32(self.tax).filler(44);
        w.done()
    }

    /// Deserializes.
    pub fn decode(buf: &[u8]) -> SiasResult<Self> {
        let mut r = Reader::new(buf);
        Ok(District {
            w_id: r.u32()?,
            d_id: r.u32()?,
            next_o_id: r.u32()?,
            ytd: r.i64()?,
            tax: r.u32()?,
        })
    }
}

/// CUSTOMER row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Customer {
    /// Warehouse id.
    pub w_id: u32,
    /// District id.
    pub d_id: u32,
    /// Customer id.
    pub c_id: u32,
    /// Balance, cents (negative allowed).
    pub balance: i64,
    /// Year-to-date payment, cents.
    pub ytd_payment: i64,
    /// Payments made.
    pub payment_cnt: u32,
    /// Deliveries received.
    pub delivery_cnt: u32,
    /// Length of the variable data filler (spec: C_DATA).
    pub data_len: u32,
}

impl Customer {
    /// Serializes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new(48 + self.data_len as usize);
        w.u32(self.w_id)
            .u32(self.d_id)
            .u32(self.c_id)
            .i64(self.balance)
            .i64(self.ytd_payment)
            .u32(self.payment_cnt)
            .u32(self.delivery_cnt)
            .u32(self.data_len)
            .filler(self.data_len as usize);
        w.done()
    }

    /// Deserializes.
    pub fn decode(buf: &[u8]) -> SiasResult<Self> {
        let mut r = Reader::new(buf);
        Ok(Customer {
            w_id: r.u32()?,
            d_id: r.u32()?,
            c_id: r.u32()?,
            balance: r.i64()?,
            ytd_payment: r.i64()?,
            payment_cnt: r.u32()?,
            delivery_cnt: r.u32()?,
            data_len: r.u32()?,
        })
    }
}

/// ITEM row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Item {
    /// Item id.
    pub id: u32,
    /// Price, cents.
    pub price: u32,
}

impl Item {
    /// Serializes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new(48);
        w.u32(self.id).u32(self.price).filler(40);
        w.done()
    }

    /// Deserializes.
    pub fn decode(buf: &[u8]) -> SiasResult<Self> {
        let mut r = Reader::new(buf);
        Ok(Item { id: r.u32()?, price: r.u32()? })
    }
}

/// STOCK row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Stock {
    /// Warehouse id.
    pub w_id: u32,
    /// Item id.
    pub i_id: u32,
    /// Quantity on hand.
    pub quantity: i32,
    /// Year-to-date units sold.
    pub ytd: u32,
    /// Orders that touched this stock.
    pub order_cnt: u32,
    /// Remote orders.
    pub remote_cnt: u32,
    /// Filler length (spec: S_DATA + S_DIST_xx).
    pub data_len: u32,
}

impl Stock {
    /// Serializes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new(32 + self.data_len as usize);
        w.u32(self.w_id)
            .u32(self.i_id)
            .u32(self.quantity as u32)
            .u32(self.ytd)
            .u32(self.order_cnt)
            .u32(self.remote_cnt)
            .u32(self.data_len)
            .filler(self.data_len as usize);
        w.done()
    }

    /// Deserializes.
    pub fn decode(buf: &[u8]) -> SiasResult<Self> {
        let mut r = Reader::new(buf);
        Ok(Stock {
            w_id: r.u32()?,
            i_id: r.u32()?,
            quantity: r.u32()? as i32,
            ytd: r.u32()?,
            order_cnt: r.u32()?,
            remote_cnt: r.u32()?,
            data_len: r.u32()?,
        })
    }
}

/// ORDERS row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Order {
    /// Warehouse id.
    pub w_id: u32,
    /// District id.
    pub d_id: u32,
    /// Order id.
    pub o_id: u32,
    /// Ordering customer.
    pub c_id: u32,
    /// Entry timestamp (virtual µs).
    pub entry_d: u64,
    /// Carrier assigned at delivery (0 = undelivered).
    pub carrier_id: u32,
    /// Number of order lines.
    pub ol_cnt: u32,
}

impl Order {
    /// Serializes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new(32);
        w.u32(self.w_id)
            .u32(self.d_id)
            .u32(self.o_id)
            .u32(self.c_id)
            .u64(self.entry_d)
            .u32(self.carrier_id)
            .u32(self.ol_cnt);
        w.done()
    }

    /// Deserializes.
    pub fn decode(buf: &[u8]) -> SiasResult<Self> {
        let mut r = Reader::new(buf);
        Ok(Order {
            w_id: r.u32()?,
            d_id: r.u32()?,
            o_id: r.u32()?,
            c_id: r.u32()?,
            entry_d: r.u64()?,
            carrier_id: r.u32()?,
            ol_cnt: r.u32()?,
        })
    }
}

/// NEW_ORDER row (presence marks an undelivered order).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NewOrderRow {
    /// Warehouse id.
    pub w_id: u32,
    /// District id.
    pub d_id: u32,
    /// Order id.
    pub o_id: u32,
}

impl NewOrderRow {
    /// Serializes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new(12);
        w.u32(self.w_id).u32(self.d_id).u32(self.o_id);
        w.done()
    }

    /// Deserializes.
    pub fn decode(buf: &[u8]) -> SiasResult<Self> {
        let mut r = Reader::new(buf);
        Ok(NewOrderRow { w_id: r.u32()?, d_id: r.u32()?, o_id: r.u32()? })
    }
}

/// ORDER_LINE row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OrderLine {
    /// Item ordered.
    pub i_id: u32,
    /// Supplying warehouse.
    pub supply_w_id: u32,
    /// Quantity.
    pub quantity: u32,
    /// Line amount, cents.
    pub amount: u32,
    /// Delivery timestamp (0 = undelivered).
    pub delivery_d: u64,
}

impl OrderLine {
    /// Serializes (with DIST_INFO filler).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new(48);
        w.u32(self.i_id)
            .u32(self.supply_w_id)
            .u32(self.quantity)
            .u32(self.amount)
            .u64(self.delivery_d)
            .filler(24);
        w.done()
    }

    /// Deserializes.
    pub fn decode(buf: &[u8]) -> SiasResult<Self> {
        let mut r = Reader::new(buf);
        Ok(OrderLine {
            i_id: r.u32()?,
            supply_w_id: r.u32()?,
            quantity: r.u32()?,
            amount: r.u32()?,
            delivery_d: r.u64()?,
        })
    }
}

/// HISTORY row (append-only).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct History {
    /// Customer warehouse.
    pub w_id: u32,
    /// Customer district.
    pub d_id: u32,
    /// Customer.
    pub c_id: u32,
    /// Payment amount, cents.
    pub amount: u32,
    /// Timestamp (virtual µs).
    pub date: u64,
}

impl History {
    /// Serializes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new(44);
        w.u32(self.w_id).u32(self.d_id).u32(self.c_id).u32(self.amount).u64(self.date).filler(20);
        w.done()
    }

    /// Deserializes.
    pub fn decode(buf: &[u8]) -> SiasResult<Self> {
        let mut r = Reader::new(buf);
        Ok(History {
            w_id: r.u32()?,
            d_id: r.u32()?,
            c_id: r.u32()?,
            amount: r.u32()?,
            date: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_records_roundtrip() {
        let w = Warehouse { id: 3, ytd: -125, tax: 750 };
        assert_eq!(Warehouse::decode(&w.encode()).unwrap(), w);
        let d = District { w_id: 3, d_id: 7, next_o_id: 3001, ytd: 99, tax: 100 };
        assert_eq!(District::decode(&d.encode()).unwrap(), d);
        let c = Customer {
            w_id: 3,
            d_id: 7,
            c_id: 42,
            balance: -1000,
            ytd_payment: 5000,
            payment_cnt: 3,
            delivery_cnt: 1,
            data_len: 120,
        };
        assert_eq!(Customer::decode(&c.encode()).unwrap(), c);
        let i = Item { id: 9, price: 4999 };
        assert_eq!(Item::decode(&i.encode()).unwrap(), i);
        let s = Stock {
            w_id: 3,
            i_id: 9,
            quantity: -5,
            ytd: 100,
            order_cnt: 10,
            remote_cnt: 1,
            data_len: 80,
        };
        assert_eq!(Stock::decode(&s.encode()).unwrap(), s);
        let o =
            Order { w_id: 3, d_id: 7, o_id: 11, c_id: 42, entry_d: 123, carrier_id: 0, ol_cnt: 9 };
        assert_eq!(Order::decode(&o.encode()).unwrap(), o);
        let n = NewOrderRow { w_id: 3, d_id: 7, o_id: 11 };
        assert_eq!(NewOrderRow::decode(&n.encode()).unwrap(), n);
        let ol = OrderLine { i_id: 9, supply_w_id: 3, quantity: 5, amount: 24995, delivery_d: 0 };
        assert_eq!(OrderLine::decode(&ol.encode()).unwrap(), ol);
        let h = History { w_id: 3, d_id: 7, c_id: 42, amount: 100, date: 55 };
        assert_eq!(History::decode(&h.encode()).unwrap(), h);
    }

    #[test]
    fn record_sizes_keep_spec_proportions() {
        // Customer and stock rows dominate; order lines are small.
        let c = Customer {
            w_id: 1,
            d_id: 1,
            c_id: 1,
            balance: 0,
            ytd_payment: 0,
            payment_cnt: 0,
            delivery_cnt: 0,
            data_len: 120,
        };
        let s = Stock {
            w_id: 1,
            i_id: 1,
            quantity: 0,
            ytd: 0,
            order_cnt: 0,
            remote_cnt: 0,
            data_len: 80,
        };
        let ol = OrderLine { i_id: 1, supply_w_id: 1, quantity: 1, amount: 1, delivery_d: 0 };
        assert!(c.encode().len() > s.encode().len());
        assert!(s.encode().len() > ol.encode().len());
    }

    #[test]
    fn decode_rejects_truncation() {
        let d = District { w_id: 1, d_id: 1, next_o_id: 1, ytd: 0, tax: 0 };
        let enc = d.encode();
        assert!(District::decode(&enc[..10]).is_err());
    }

    #[test]
    fn negative_stock_quantity_roundtrips() {
        // TPC-C lets S_QUANTITY go negative before the +91 refill.
        let s = Stock {
            w_id: 1,
            i_id: 1,
            quantity: -42,
            ytd: 0,
            order_cnt: 0,
            remote_cnt: 0,
            data_len: 0,
        };
        assert_eq!(Stock::decode(&s.encode()).unwrap().quantity, -42);
    }
}
