//! Deterministic fault-injection harness.
//!
//! A seeded multi-terminal workload runs read-modify-write transactions
//! over a small keyed table whose payloads are self-describing,
//! checksummed [`WriteTag`]s. Everything the clients did and observed is
//! recorded as a [`History`]. The harness then "crashes" the engine at
//! every Nth WAL-record boundary: it truncates the durable record
//! stream at that point, re-opens a fresh engine via
//! [`SiasDb::recover_from_wal`], and feeds the pre-crash history plus
//! the recovered state to the black-box checker
//! ([`check_anomalies`] / [`check_durability`]).
//!
//! Determinism is the point: the workload runs on a single thread with
//! a round-robin terminal schedule, all randomness comes from a
//! splitmix64 stream seeded by [`ChaosConfig::seed`], and device faults
//! (if enabled) draw from the storage layer's own deterministic
//! injector keyed by the virtual clock. Every fault sequence — and
//! therefore every verdict — is reproducible from the `(seed,
//! crash_point)` pair alone, which [`CrashMatrixReport::fingerprint`]
//! certifies.
//!
//! The harness can also impersonate a buggy engine:
//! [`ChaosConfig::plant_durability_bug`] makes it acknowledge commits
//! at the durability watermark observed at transaction *begin* — the
//! classic ack-before-force bug. The checker must flag it (DUR-ACK),
//! which validates the checker itself end to end.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use parking_lot::Mutex;
use sias_common::{SiasError, Xid};
use sias_core::{FlushPolicy, GcCrashPoint, GcSliceOpts, GcStats, SiasDb, TupleVersion};
use sias_obs::{FlightRecorder, MetricsSnapshot, SpanName, TraceEvent};
use sias_storage::{FaultConfig, FaultPlan, StorageConfig, Wal, WalRecord};
use sias_txn::{MvccEngine, Txn};

use crate::check::{
    check_anomalies, check_durability, check_serializability, DurabilityInput, HistOp, HistOutcome,
    History, TxnRecord, Violation, WriteTag,
};

/// Parameters of one chaos run. Two runs with equal configs produce
/// bit-identical histories, fault sequences and verdicts.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Master seed for the workload's splitmix64 stream and the device
    /// fault injector.
    pub seed: u64,
    /// Transactions to run (excluding the setup transaction).
    pub txns: usize,
    /// Key-space size; every key is pre-inserted by the setup txn.
    pub keys: u64,
    /// Operations per transaction.
    pub ops_per_txn: usize,
    /// Simulated terminals, interleaved round-robin on one thread.
    pub terminals: usize,
    /// Probability (parts per million) of a deliberate client abort at
    /// the end of a transaction.
    pub abort_ppm: u32,
    /// Fault profile for the *data* device during the run. The WAL
    /// device always runs fault-free here: torn and short log writes
    /// are exercised separately by truncating the record stream.
    pub data_faults: FaultConfig,
    /// Acknowledge commits at the durability watermark recorded at
    /// transaction begin instead of after the commit force — a planted
    /// ack-before-force bug the checker must catch.
    pub plant_durability_bug: bool,
    /// Run the engine in serializable (SSI) mode. The crash matrix then
    /// additionally gates the history on [`check_serializability`]: a
    /// correct SSI implementation admits no G2 cycle, ever.
    pub serializable: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 1,
            txns: 48,
            keys: 12,
            ops_per_txn: 6,
            terminals: 4,
            abort_ppm: 120_000,
            data_faults: FaultConfig::none(),
            plant_durability_bug: false,
            serializable: false,
        }
    }
}

impl ChaosConfig {
    /// Default shape with a specific seed.
    pub fn with_seed(seed: u64) -> Self {
        ChaosConfig { seed, ..Default::default() }
    }
}

/// Outcome counters and artifacts of one chaos workload run.
pub struct ChaosRun {
    /// The recorded client history, including the per-key version order
    /// extracted from a clean full-log recovery.
    pub history: History,
    /// The durable WAL record stream scanned back from the device —
    /// the crash matrix truncates this.
    pub records: Vec<WalRecord>,
    /// Transactions acknowledged as committed.
    pub committed: u64,
    /// Transactions aborted (client choice, write conflicts, or
    /// detected read corruption).
    pub aborted: u64,
    /// First-updater-wins conflicts encountered.
    pub conflicts: u64,
    /// Reads that failed the payload checksum or errored at the device
    /// (only with data faults enabled); each aborts its transaction.
    pub corrupt_reads: u64,
    /// Faults the storage layer actually injected during the run
    /// (`storage.faults.io_faults_injected`).
    pub faults_injected: u64,
    /// Transactions the SSI machinery aborted (pivot detection at read,
    /// write or commit time). Zero unless the run is serializable.
    pub serialization_aborts: u64,
    /// Key-space size, for recovered-state probes.
    pub keys: u64,
    /// The pre-crash engine's flight recorder (tracing is enabled for
    /// the whole run). Still live after the simulated crash, so the
    /// crash matrix can stamp anomaly instants into the same timeline.
    pub tracer: Arc<FlightRecorder>,
    /// Metrics snapshot of the pre-crash engine, taken after the crash
    /// scan (excluded from fingerprints: latencies are wall-clock).
    pub metrics: MetricsSnapshot,
}

/// splitmix64: the workload's only randomness source.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn chance_ppm(&mut self, ppm: u32) -> bool {
        self.next() % 1_000_000 < u64::from(ppm)
    }
}

/// One simulated terminal's in-flight transaction.
struct Terminal {
    txn: Txn,
    rec: TxnRecord,
    ops_done: usize,
    op_seq: u32,
    /// Durable watermark at begin — the planted bug acks here.
    ack_basis: u64,
}

/// Runs the seeded chaos workload against a fresh in-memory SIAS engine
/// (with `cfg.data_faults` injected below the buffer pool), scans the
/// durable WAL back from the device, and extracts the committed version
/// order from a clean recovery of the full log.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosRun {
    // A deliberately tiny pool: steady eviction and re-read traffic is
    // what routes the workload through the (possibly faulty) data
    // device; with the default pool every page would stay cached and
    // injected faults would never surface.
    let storage = StorageConfig::in_memory()
        .with_pool_frames(48)
        .with_faults(FaultPlan { data: cfg.data_faults, wal: FaultConfig::none() });
    let db = SiasDb::open(storage);
    if cfg.serializable {
        db.set_serializable();
    }
    // The flight recorder runs for the whole pre-crash lifetime: when a
    // crash or an anomaly fires, the last window of spans is the dump.
    // Recovery engines built later never enable tracing and stay free.
    let tracer = Arc::clone(db.stack().obs.tracer());
    tracer.set_enabled(true);

    // Commit-acknowledgement hook: the engine tells us the dense commit
    // sequence for every commit it acknowledges.
    let seqs: Arc<Mutex<HashMap<Xid, u64>>> = Arc::new(Mutex::new(HashMap::new()));
    {
        let seqs = Arc::clone(&seqs);
        db.txm().set_commit_hook(move |xid, seq| {
            seqs.lock().insert(xid, seq);
        });
    }

    let rel = db.create_relation("chaos");
    let mut history = History::default();
    let mut rng = Rng(cfg.seed);
    let (mut committed, mut aborted, mut conflicts, mut corrupt_reads) = (0u64, 0u64, 0u64, 0u64);

    // Setup: every key exists before the contended phase starts.
    {
        let txn = db.begin();
        let xid = txn.xid;
        let mut rec = TxnRecord { xid, ops: Vec::new(), outcome: HistOutcome::Aborted };
        for key in 0..cfg.keys {
            let tag = WriteTag { xid, seq: key as u32 };
            db.insert(&txn, rel, key, &tag.encode_payload(key)).expect("setup insert");
            rec.ops.push(HistOp::Write { key, tag });
        }
        db.commit(txn).expect("setup commit");
        let seq = seqs.lock().remove(&xid).unwrap_or(0);
        rec.outcome = HistOutcome::Committed {
            commit_seq: seq,
            acked_at_record: db.stack().wal.durable_record_count(),
        };
        committed += 1;
        history.txns.push(rec);
    }

    let mut terminals: Vec<Option<Terminal>> = (0..cfg.terminals.max(1)).map(|_| None).collect();
    let mut started = 0usize;
    loop {
        let mut idle = true;
        for slot in terminals.iter_mut() {
            match slot {
                None if started < cfg.txns => {
                    let ack_basis = db.stack().wal.record_counts().0;
                    let txn = db.begin();
                    let rec =
                        TxnRecord { xid: txn.xid, ops: Vec::new(), outcome: HistOutcome::Aborted };
                    *slot = Some(Terminal { txn, rec, ops_done: 0, op_seq: 0, ack_basis });
                    started += 1;
                    idle = false;
                }
                None => {}
                Some(t) if t.ops_done < cfg.ops_per_txn => {
                    idle = false;
                    t.ops_done += 1;
                    let key = rng.next() % cfg.keys;
                    let is_rmw = rng.next() % 100 < 60;
                    // Every op starts with a read of the key.
                    let observed = match db.get(&t.txn, rel, key) {
                        Ok(Some(bytes)) => match WriteTag::decode_payload(&bytes) {
                            Some((k, tag)) if k == key => Some(tag),
                            _ => {
                                // Corruption slipped through the engine:
                                // count it and abort this transaction.
                                corrupt_reads += 1;
                                let t = slot.take().unwrap();
                                db.abort(t.txn);
                                aborted += 1;
                                history.txns.push(t.rec);
                                continue;
                            }
                        },
                        Ok(None) => None,
                        Err(SiasError::SerializationFailure(_)) => {
                            // SSI pivot detected at read time: the read
                            // rolled back, the client aborts the txn.
                            let t = slot.take().unwrap();
                            db.abort(t.txn);
                            aborted += 1;
                            history.txns.push(t.rec);
                            continue;
                        }
                        Err(_) => {
                            corrupt_reads += 1;
                            let t = slot.take().unwrap();
                            db.abort(t.txn);
                            aborted += 1;
                            history.txns.push(t.rec);
                            continue;
                        }
                    };
                    t.rec.ops.push(HistOp::Read { key, observed });
                    if !is_rmw {
                        continue;
                    }
                    let tag = WriteTag { xid: t.txn.xid, seq: t.op_seq };
                    t.op_seq += 1;
                    match db.update(&t.txn, rel, key, &tag.encode_payload(key)) {
                        Ok(()) => t.rec.ops.push(HistOp::Write { key, tag }),
                        Err(SiasError::WriteConflict { .. }) => {
                            conflicts += 1;
                            let t = slot.take().unwrap();
                            db.abort(t.txn);
                            aborted += 1;
                            history.txns.push(t.rec);
                        }
                        Err(_) => {
                            let t = slot.take().unwrap();
                            db.abort(t.txn);
                            aborted += 1;
                            history.txns.push(t.rec);
                        }
                    }
                }
                Some(_) => {
                    idle = false;
                    let mut t = slot.take().unwrap();
                    if rng.chance_ppm(cfg.abort_ppm) {
                        db.abort(t.txn);
                        aborted += 1;
                    } else {
                        let xid = t.txn.xid;
                        match db.commit(t.txn) {
                            Ok(()) => {
                                let acked_at_record = if cfg.plant_durability_bug {
                                    t.ack_basis
                                } else {
                                    db.stack().wal.durable_record_count()
                                };
                                let seq = seqs.lock().remove(&xid).unwrap_or(0);
                                t.rec.outcome =
                                    HistOutcome::Committed { commit_seq: seq, acked_at_record };
                                committed += 1;
                            }
                            Err(SiasError::SerializationFailure(_)) => {
                                // The engine aborted the pivot *before*
                                // appending its Commit record, so this is
                                // a definitive abort, not an unacked
                                // maybe-commit.
                                aborted += 1;
                            }
                            Err(_) => {
                                t.rec.outcome = HistOutcome::Unacked;
                            }
                        }
                    }
                    history.txns.push(t.rec);
                }
            }
        }
        if idle {
            break;
        }
    }

    // One transaction dies in flight: its appends reach the durable log
    // (a background force), but no Commit record ever does. Recovery
    // must discard it at every crash point.
    {
        let txn = db.begin();
        let xid = txn.xid;
        let mut rec = TxnRecord { xid, ops: Vec::new(), outcome: HistOutcome::Unacked };
        for key in 0..2.min(cfg.keys) {
            let tag = WriteTag { xid, seq: key as u32 };
            if db.update(&txn, rel, key, &tag.encode_payload(key)).is_ok() {
                rec.ops.push(HistOp::Write { key, tag });
            }
        }
        history.txns.push(rec);
        tracer.instant(SpanName::ChaosCrash, xid.0, 0);
        std::mem::forget(txn); // the crash: no commit, no abort
        let _ = db.stack().wal.force();
    }

    // The "crash": scan the durable log straight off the device, as a
    // post-crash process would.
    let (records, _) = Wal::scan_device(db.stack().wal.device().as_ref());
    let faults_injected = db.stack().obs.counter("storage.faults.io_faults_injected").get();
    let metrics = db.stack().obs.snapshot();

    // Version order, from a clean recovery of the full log: the
    // engine's own opinion of each key's committed chain.
    let (clean, _) =
        SiasDb::recover_from_wal(&records, StorageConfig::in_memory(), FlushPolicy::T2)
            .expect("clean full-log recovery");
    history.version_order = extract_version_order(&clean, "chaos", &history.committed());

    ChaosRun {
        history,
        records,
        committed,
        aborted,
        conflicts,
        corrupt_reads,
        faults_injected,
        serialization_aborts: db.serialization_aborts(),
        keys: cfg.keys,
        tracer,
        metrics,
    }
}

/// Walks every chain of the database oldest-first and decodes the tag
/// stream per key, keeping only acknowledged-committed writers. Shared
/// with the threaded driver, whose stress test needs the engine's own
/// opinion of each key's committed order for the G0 check.
pub(crate) fn extract_version_order(
    db: &SiasDb,
    rel_name: &str,
    committed: &BTreeSet<Xid>,
) -> BTreeMap<u64, Vec<WriteTag>> {
    let mut order = BTreeMap::new();
    let Some(rel) = db.relation(rel_name) else { return order };
    let handle = db.relation_handle(rel).expect("chaos relation handle");
    let mut entries = Vec::new();
    handle.vidmap.for_each(|_, tid| entries.push(tid));
    for entry in entries {
        let chain = sias_core::chain::collect_chain(&db.stack().pool, rel, entry)
            .expect("recovered chain is intact");
        let mut key = None;
        let mut tags = Vec::new();
        for (_, v) in chain.iter().rev() {
            let Some((k, tag)) = WriteTag::decode_payload(&v.payload) else { continue };
            if committed.contains(&tag.xid) {
                key = Some(k);
                tags.push(tag);
            }
        }
        if let Some(k) = key {
            order.insert(k, tags);
        }
    }
    order
}

/// Verdict of one full crash-point sweep.
#[derive(Clone, Debug)]
pub struct CrashMatrixReport {
    /// The seed that produced this report.
    pub seed: u64,
    /// Records in the durable pre-crash log.
    pub total_records: u64,
    /// Crash points probed.
    pub crash_points: u64,
    /// Transactions acknowledged by the pre-crash engine.
    pub committed_txns: u64,
    /// Transactions aborted by the pre-crash engine.
    pub aborted_txns: u64,
    /// First-updater-wins conflicts in the workload.
    pub conflicts: u64,
    /// Faults the storage layer injected during the pre-crash run.
    pub faults_injected: u64,
    /// Transactions the SSI machinery aborted during the pre-crash run
    /// (zero unless `serializable` was set).
    pub serialization_aborts: u64,
    /// Every violation found, tagged with the crash point that exposed
    /// it (`total_records` for whole-history anomaly findings).
    pub violations: Vec<(u64, Violation)>,
    /// Order-sensitive digest of the log, the history outcomes and the
    /// violations: equal seeds and configs must produce equal
    /// fingerprints, which the reproducibility test asserts. Trace
    /// events are excluded — wall-clock timings are not reproducible.
    pub fingerprint: u64,
    /// Flight-recorder dump from the pre-crash engine: the retained
    /// span window plus one `anomaly.flag` instant per violation
    /// (`arg` = the crash point that exposed it).
    pub trace_events: Vec<TraceEvent>,
    /// Pre-crash engine metrics (also fingerprint-exempt).
    pub metrics: MetricsSnapshot,
}

impl CrashMatrixReport {
    /// One-line summary for harness output.
    pub fn summary(&self) -> String {
        format!(
            "seed {:>3}: {} records, {} crash points, {} committed, {} aborted, \
             {} faults, {} ssi-aborts, {} violations, fingerprint {:016x}",
            self.seed,
            self.total_records,
            self.crash_points,
            self.committed_txns,
            self.aborted_txns,
            self.faults_injected,
            self.serialization_aborts,
            self.violations.len(),
            self.fingerprint
        )
    }
}

/// Runs the chaos workload, then crashes it at every `crash_every`th
/// WAL-record boundary (plus the full log), recovering each prefix on a
/// fresh in-memory stack and checking SI anomalies and durability.
pub fn crash_matrix(cfg: &ChaosConfig, crash_every: u64) -> CrashMatrixReport {
    let crash_every = crash_every.max(1);
    let run = run_chaos(cfg);
    let total = run.records.len() as u64;
    let mut violations: Vec<(u64, Violation)> = Vec::new();

    // Whole-history anomaly pass (crash-independent).
    for v in check_anomalies(&run.history) {
        violations.push((total, v));
    }

    // Serializable runs additionally gate on the serialization graph:
    // SSI must admit no G2 cycle among acknowledged commits. Plain SI
    // legitimately permits write skew, so the pass only gates SSI runs.
    if cfg.serializable {
        for v in check_serializability(&run.history) {
            violations.push((total, v));
        }
    }

    // Crash-point sweep.
    let mut points: Vec<u64> = (crash_every..total).step_by(crash_every as usize).collect();
    points.push(total);
    for &n in &points {
        let prefix = &run.records[..n as usize];
        let (recovered, _) =
            SiasDb::recover_from_wal(prefix, StorageConfig::in_memory(), FlushPolicy::T2)
                .expect("prefix recovery");
        let input = durability_input(&run, prefix, &recovered);
        for v in check_durability(&run.history, &input) {
            violations.push((n, v));
        }
    }

    let fingerprint = fingerprint(cfg, &run, &violations);
    for (point, _) in &violations {
        run.tracer.instant(SpanName::AnomalyFlag, 0, *point);
    }
    let trace_events = run.tracer.capture();
    let metrics = run.metrics.clone();
    CrashMatrixReport {
        seed: cfg.seed,
        total_records: total,
        crash_points: points.len() as u64,
        committed_txns: run.committed,
        aborted_txns: run.aborted,
        conflicts: run.conflicts,
        faults_injected: run.faults_injected,
        serialization_aborts: run.serialization_aborts,
        violations,
        fingerprint,
        trace_events,
        metrics,
    }
}

/// Builds the checker's view of one crash point: commit set and final
/// tags decoded from the surviving prefix, commit set and visible tags
/// read back from the recovered engine.
fn durability_input(run: &ChaosRun, prefix: &[WalRecord], recovered: &SiasDb) -> DurabilityInput {
    let mut prefix_commits: BTreeSet<Xid> = BTreeSet::new();
    for rec in prefix {
        if let WalRecord::Commit(x) = rec {
            prefix_commits.insert(*x);
        }
    }

    let mut expected_state: BTreeMap<u64, WriteTag> = BTreeMap::new();
    for rec in prefix {
        let WalRecord::Insert { xid, payload, .. } = rec else { continue };
        if !prefix_commits.contains(xid) {
            continue;
        }
        let Ok(version) = TupleVersion::decode(payload) else { continue };
        if let Some((key, tag)) = WriteTag::decode_payload(&version.payload) {
            expected_state.insert(key, tag);
        }
    }

    let mut recovered_commits: BTreeSet<Xid> = BTreeSet::new();
    for t in &run.history.txns {
        if recovered.txm().clog.status(t.xid) == sias_txn::TxnStatus::Committed {
            recovered_commits.insert(t.xid);
        }
    }

    let mut recovered_state: BTreeMap<u64, WriteTag> = BTreeMap::new();
    if let Some(rel) = recovered.relation("chaos") {
        let txn = recovered.begin();
        for key in 0..run.keys {
            if let Ok(Some(bytes)) = recovered.get(&txn, rel, key) {
                if let Some((k, tag)) = WriteTag::decode_payload(&bytes) {
                    if k == key {
                        recovered_state.insert(key, tag);
                    }
                }
            }
        }
        recovered.commit(txn).expect("probe txn commit");
    }

    DurabilityInput {
        crash_record_count: prefix.len() as u64,
        prefix_commits,
        recovered_commits,
        expected_state,
        recovered_state,
    }
}

/// Verdict of one scrub scenario: seeded bit-rot planted under a live
/// engine, self-repaired by the scrubber, and black-box checked.
#[derive(Clone, Debug)]
pub struct ScrubReport {
    /// The seed that produced this run.
    pub seed: u64,
    /// Transactions acknowledged by the workload.
    pub committed_txns: u64,
    /// Sealed pages the scrubber probed.
    pub pages_scanned: u64,
    /// Pages the planted bit-rot corrupted (as detected).
    pub pages_corrupt: u64,
    /// Corrupt pages repaired from WAL history and reclaimed.
    pub pages_repaired: u64,
    /// Item chains rebuilt during repair.
    pub chains_rebuilt: u64,
    /// SI anomalies found in the history *including* the post-scrub
    /// reads — must be empty for a correct repair.
    pub violations: Vec<Violation>,
}

impl ScrubReport {
    /// One-line summary for harness output.
    pub fn summary(&self) -> String {
        format!(
            "seed {:>3}: {} committed, {} pages scanned, {} corrupt, {} repaired, \
             {} chains rebuilt, {} violations",
            self.seed,
            self.committed_txns,
            self.pages_scanned,
            self.pages_corrupt,
            self.pages_repaired,
            self.chains_rebuilt,
            self.violations.len()
        )
    }
}

/// Runs a seeded serial workload on a live engine, checkpoints, plants
/// bit-rot on up to `rot_pages` sealed data pages (chosen by the seeded
/// stream), lets the scrubber repair them, then re-reads every key in a
/// fresh transaction appended to the history and runs the SI-anomaly
/// checker over the whole thing. A correct scrubber yields
/// `pages_corrupt == pages_repaired` and zero violations.
///
/// This is deliberately a separate scenario from [`run_chaos`]: the
/// crash matrix leaves a forgotten in-flight transaction behind (its
/// point is crash resolution), while scrubbing — like vacuum — needs a
/// quiescent engine.
pub fn scrub_scenario(cfg: &ChaosConfig, rot_pages: usize) -> ScrubReport {
    let db = SiasDb::open(StorageConfig::in_memory().with_pool_frames(48));
    let seqs: Arc<Mutex<HashMap<Xid, u64>>> = Arc::new(Mutex::new(HashMap::new()));
    {
        let seqs = Arc::clone(&seqs);
        db.txm().set_commit_hook(move |xid, seq| {
            seqs.lock().insert(xid, seq);
        });
    }
    let rel = db.create_relation("chaos");
    let mut history = History::default();
    let mut rng = Rng(cfg.seed ^ 0x5c2b_ab5e);
    let mut committed = 0u64;

    let ack = |xid: Xid, mut rec: TxnRecord| -> TxnRecord {
        let seq = seqs.lock().remove(&xid).unwrap_or(0);
        rec.outcome = HistOutcome::Committed {
            commit_seq: seq,
            acked_at_record: db.stack().wal.durable_record_count(),
        };
        rec
    };

    // Setup: every key exists.
    {
        let txn = db.begin();
        let xid = txn.xid;
        let mut rec = TxnRecord { xid, ops: Vec::new(), outcome: HistOutcome::Aborted };
        for key in 0..cfg.keys {
            let tag = WriteTag { xid, seq: key as u32 };
            db.insert(&txn, rel, key, &tag.encode_payload(key)).expect("setup insert");
            rec.ops.push(HistOp::Write { key, tag });
        }
        db.commit(txn).expect("setup commit");
        history.txns.push(ack(xid, rec));
        committed += 1;
    }

    // Serial read-modify-write rounds (the scrub scenario needs the
    // engine quiescent afterwards, so no forgotten in-flight work).
    for _ in 0..cfg.txns {
        let txn = db.begin();
        let xid = txn.xid;
        let mut rec = TxnRecord { xid, ops: Vec::new(), outcome: HistOutcome::Aborted };
        for seq in 0..cfg.ops_per_txn as u32 {
            let key = rng.next() % cfg.keys;
            let observed = match db.get(&txn, rel, key).expect("live read") {
                Some(bytes) => WriteTag::decode_payload(&bytes).map(|(_, tag)| tag),
                None => None,
            };
            rec.ops.push(HistOp::Read { key, observed });
            let tag = WriteTag { xid, seq };
            match db.update(&txn, rel, key, &tag.encode_payload(key)) {
                Ok(()) => rec.ops.push(HistOp::Write { key, tag }),
                Err(_) => break, // serial workload: only duplicate-key self-conflicts
            }
        }
        if rng.chance_ppm(cfg.abort_ppm) {
            db.abort(txn);
            history.txns.push(rec);
        } else {
            db.commit(txn).expect("serial commit");
            history.txns.push(ack(xid, rec));
            committed += 1;
        }
    }

    // Seal and flush everything, then plant bit-rot on sealed pages.
    db.checkpoint().expect("checkpoint before rot");
    let handle = db.relation_handle(rel).expect("chaos relation");
    let nblocks = db.stack().space.relation_blocks(rel);
    let sealed: Vec<u32> = (0..nblocks)
        .filter(|b| handle.append.open_block() != Some(*b) && !handle.append.is_free(*b))
        .collect();
    let mut victims: BTreeSet<u32> = BTreeSet::new();
    while victims.len() < rot_pages.min(sealed.len()) {
        victims.insert(sealed[(rng.next() % sealed.len() as u64) as usize]);
    }
    let device = db.stack().pool.device();
    for &block in &victims {
        let lba = db.stack().space.resolve(rel, block).expect("victim lba");
        let mut img = vec![0u8; sias_common::PAGE_SIZE];
        device.read_page(lba, &mut img);
        let off = (rng.next() % sias_common::PAGE_SIZE as u64) as usize;
        let bit = 1u8 << (rng.next() % 8);
        img[off] ^= bit;
        device.write_page(lba, &img, true);
        db.stack().pool.invalidate_block(rel, block);
    }

    // Self-repair. Any single-bit flip is detectable: the CRC covers
    // every page byte outside its own field, and a flip inside the field
    // breaks the stored value instead.
    let mut scrubber = sias_core::Scrubber::new();
    let pass = scrubber.sweep(&db).expect("scrub sweep");

    // Post-scrub probe: every key read back in one committed transaction
    // appended to the history, so the anomaly checker sees the repaired
    // state as just another snapshot.
    {
        let txn = db.begin();
        let xid = txn.xid;
        let mut rec = TxnRecord { xid, ops: Vec::new(), outcome: HistOutcome::Aborted };
        for key in 0..cfg.keys {
            let observed = db
                .get(&txn, rel, key)
                .expect("post-scrub read must not fail")
                .and_then(|bytes| WriteTag::decode_payload(&bytes).map(|(_, tag)| tag));
            assert!(observed.is_some(), "post-scrub read of key {key} lost its tag");
            rec.ops.push(HistOp::Read { key, observed });
        }
        db.commit(txn).expect("probe commit");
        history.txns.push(ack(xid, rec));
        committed += 1;
    }

    history.version_order = extract_version_order(&db, "chaos", &history.committed());
    let violations = check_anomalies(&history);
    ScrubReport {
        seed: cfg.seed,
        committed_txns: committed,
        pages_scanned: pass.pages_scanned,
        pages_corrupt: pass.pages_corrupt,
        pages_repaired: pass.pages_repaired,
        chains_rebuilt: pass.chains_rebuilt,
        violations,
    }
}

/// Verdict of one seeded mid-relocation crash: the process dies at a
/// chosen [`GcCrashPoint`] inside an incremental GC slice, the WAL is
/// recovered on a fresh stack, and both the recovered and the
/// surviving live engine are black-box checked.
#[derive(Clone, Debug)]
pub struct GcCrashReport {
    /// The seed that produced this run.
    pub seed: u64,
    /// Where inside the slice the simulated crash fired.
    pub crash_point: GcCrashPoint,
    /// Transactions acknowledged by the workload.
    pub committed_txns: u64,
    /// Whether the target crash point was actually reached (a run with
    /// no garbage can't relocate; the gate requires this to be true).
    pub crash_fired: bool,
    /// Live versions relocated before and after the crash.
    pub versions_relocated: u64,
    /// Victim pages physically recycled by the time GC went quiet.
    pub pages_reclaimed: u64,
    /// Committed keys whose newest tag was missing or wrong after WAL
    /// recovery — must be zero ("no lost versions").
    pub lost_keys: u64,
    /// SI anomalies over the live engine's history *including* a
    /// post-crash, post-GC probe of every key — must be empty.
    pub violations: Vec<Violation>,
}

impl GcCrashReport {
    /// One-line summary for harness output.
    pub fn summary(&self) -> String {
        format!(
            "seed {:>3} @ {:?}: {} committed, fired {}, {} relocated, {} reclaimed, \
             {} lost keys, {} violations",
            self.seed,
            self.crash_point,
            self.committed_txns,
            self.crash_fired,
            self.versions_relocated,
            self.pages_reclaimed,
            self.lost_keys,
            self.violations.len()
        )
    }
}

/// Runs a seeded serial update-heavy workload (building version-chain
/// garbage), then drives incremental GC slices with a crash injected at
/// `crash_point` — after the relocation append, after the CAS publish,
/// or just before a deferred page recycle. The "crashed" process's WAL
/// is scanned and recovered on a fresh in-memory stack; every key the
/// workload committed must read back with its newest tag there (no
/// lost versions). The surviving live engine then finishes GC and is
/// probed: its whole history, probe included, must show zero SI
/// anomalies, and its ⟨key, VID⟩ index must pass validation.
pub fn gc_crash_scenario(cfg: &ChaosConfig, crash_point: GcCrashPoint) -> GcCrashReport {
    let db = SiasDb::open(StorageConfig::in_memory().with_pool_frames(48));
    let seqs: Arc<Mutex<HashMap<Xid, u64>>> = Arc::new(Mutex::new(HashMap::new()));
    {
        let seqs = Arc::clone(&seqs);
        db.txm().set_commit_hook(move |xid, seq| {
            seqs.lock().insert(xid, seq);
        });
    }
    let rel = db.create_relation("chaos");
    let mut history = History::default();
    let mut rng = Rng(cfg.seed ^ 0x6c_9c3d_11f7);
    let mut committed = 0u64;
    // Last committed tag per key — the "no lost versions" oracle.
    let mut expected: BTreeMap<u64, WriteTag> = BTreeMap::new();

    let ack = |xid: Xid, mut rec: TxnRecord| -> TxnRecord {
        let seq = seqs.lock().remove(&xid).unwrap_or(0);
        rec.outcome = HistOutcome::Committed {
            commit_seq: seq,
            acked_at_record: db.stack().wal.durable_record_count(),
        };
        rec
    };

    // Setup: every key exists.
    {
        let txn = db.begin();
        let xid = txn.xid;
        let mut rec = TxnRecord { xid, ops: Vec::new(), outcome: HistOutcome::Aborted };
        for key in 0..cfg.keys {
            let tag = WriteTag { xid, seq: key as u32 };
            db.insert(&txn, rel, key, &tag.encode_payload(key)).expect("setup insert");
            rec.ops.push(HistOp::Write { key, tag });
            expected.insert(key, tag);
        }
        db.commit(txn).expect("setup commit");
        history.txns.push(ack(xid, rec));
        committed += 1;
    }

    // Serial read-modify-write rounds: each superseded version is
    // GC garbage, so the slices below always have relocation work.
    for _ in 0..cfg.txns {
        let txn = db.begin();
        let xid = txn.xid;
        let mut rec = TxnRecord { xid, ops: Vec::new(), outcome: HistOutcome::Aborted };
        let mut writes: Vec<(u64, WriteTag)> = Vec::new();
        for seq in 0..cfg.ops_per_txn as u32 {
            let key = rng.next() % cfg.keys;
            let observed = match db.get(&txn, rel, key).expect("live read") {
                Some(bytes) => WriteTag::decode_payload(&bytes).map(|(_, tag)| tag),
                None => None,
            };
            rec.ops.push(HistOp::Read { key, observed });
            let tag = WriteTag { xid, seq };
            match db.update(&txn, rel, key, &tag.encode_payload(key)) {
                Ok(()) => {
                    rec.ops.push(HistOp::Write { key, tag });
                    writes.push((key, tag));
                }
                Err(_) => break, // serial workload: only duplicate-key self-conflicts
            }
        }
        if rng.chance_ppm(cfg.abort_ppm) {
            db.abort(txn);
            history.txns.push(rec);
        } else {
            db.commit(txn).expect("serial commit");
            history.txns.push(ack(xid, rec));
            committed += 1;
            for (key, tag) in writes {
                expected.insert(key, tag);
            }
        }
    }

    // Churn phase: hammer only the upper half of the key space. The
    // frozen lower half's newest versions are left stranded on pages
    // that fill up with dead upper-half versions — exactly the
    // mixed live/dead victim pages whose chains incremental GC must
    // *relocate* (an all-dead page is parked without relocation, so
    // without this phase the append/CAS crash points never fire).
    let hot_lo = (cfg.keys / 2).max(1);
    for round in 0..48u32 {
        let txn = db.begin();
        let xid = txn.xid;
        let mut rec = TxnRecord { xid, ops: Vec::new(), outcome: HistOutcome::Aborted };
        let mut writes: Vec<(u64, WriteTag)> = Vec::new();
        for (i, key) in (hot_lo..cfg.keys).enumerate() {
            let tag = WriteTag { xid, seq: round * 1000 + i as u32 };
            if db.update(&txn, rel, key, &tag.encode_payload(key)).is_ok() {
                rec.ops.push(HistOp::Write { key, tag });
                writes.push((key, tag));
            }
        }
        db.commit(txn).expect("churn commit");
        history.txns.push(ack(xid, rec));
        committed += 1;
        for (key, tag) in writes {
            expected.insert(key, tag);
        }
    }

    // Incremental GC with the seeded crash: the first time the slice
    // passes `crash_point`, the hook "kills the process" — the slice
    // abandons its work exactly there (locks die with the process; the
    // harness releases them the same way).
    let mut cursor = 0;
    let mut stats = GcStats::default();
    let mut fired = false;
    let opts = GcSliceOpts::default();
    for _ in 0..256 {
        let s = db
            .vacuum_slice_interruptible(rel, &mut cursor, &opts, &mut |p| {
                if p == crash_point && !fired {
                    fired = true;
                    return true;
                }
                false
            })
            .expect("gc slice");
        stats.merge(s);
        if fired {
            break;
        }
    }

    // The crash: recover the WAL as a fresh process would. The live
    // engine's in-memory state is gone; only the log survives.
    let (records, _) = Wal::scan_device(db.stack().wal.device().as_ref());
    let (recovered, _) =
        SiasDb::recover_from_wal(&records, StorageConfig::in_memory(), FlushPolicy::T2)
            .expect("mid-relocation recovery");
    let mut lost_keys = 0u64;
    if let Some(rrel) = recovered.relation("chaos") {
        let txn = recovered.begin();
        for (key, want) in &expected {
            let got = recovered
                .get(&txn, rrel, *key)
                .expect("recovered read")
                .and_then(|bytes| WriteTag::decode_payload(&bytes).map(|(_, tag)| tag));
            if got != Some(*want) {
                lost_keys += 1;
            }
        }
        recovered.commit(txn).expect("recovered probe commit");
    } else {
        lost_keys = cfg.keys;
    }

    // The surviving engine carries on: GC runs to completion (the
    // interrupted slice must have left no wedged locks or half-state),
    // then every key is probed in a committed transaction appended to
    // the history for the anomaly checker.
    for _ in 0..256 {
        let s = db.vacuum_slice(rel, &mut cursor, &opts).expect("post-crash gc slice");
        let quiet = s.versions_relocated == 0 && s.pages_reclaimed == 0 && s.items_cleared == 0;
        stats.merge(s);
        if quiet && cursor == 0 {
            break;
        }
    }
    db.debug_validate_index(rel).expect("index consistent after interrupted GC");
    {
        let txn = db.begin();
        let xid = txn.xid;
        let mut rec = TxnRecord { xid, ops: Vec::new(), outcome: HistOutcome::Aborted };
        for key in 0..cfg.keys {
            let observed = db
                .get(&txn, rel, key)
                .expect("post-gc read must not fail")
                .and_then(|bytes| WriteTag::decode_payload(&bytes).map(|(_, tag)| tag));
            assert!(observed.is_some(), "post-gc read of key {key} lost its tag");
            rec.ops.push(HistOp::Read { key, observed });
        }
        db.commit(txn).expect("probe commit");
        history.txns.push(ack(xid, rec));
        committed += 1;
    }

    history.version_order = extract_version_order(&db, "chaos", &history.committed());
    let violations = check_anomalies(&history);
    GcCrashReport {
        seed: cfg.seed,
        crash_point,
        committed_txns: committed,
        crash_fired: fired,
        versions_relocated: stats.versions_relocated,
        pages_reclaimed: stats.pages_reclaimed,
        lost_keys,
        violations,
    }
}

/// Verdict of one planted write-skew run: per constraint pair, two
/// transactions each read both keys and write one — the canonical G2
/// anomaly SI admits and SSI must abort.
#[derive(Clone, Debug)]
pub struct WriteSkewReport {
    /// The seed that produced this run.
    pub seed: u64,
    /// Constraint pairs planted (two transactions each).
    pub pairs: u64,
    /// Whether the engine ran in serializable (SSI) mode.
    pub serializable: bool,
    /// Transactions acknowledged as committed (incl. the setup txn).
    pub committed_txns: u64,
    /// Transactions aborted (all of them SSI pivot aborts here).
    pub aborted_txns: u64,
    /// Aborts attributed to the SSI machinery by the engine's counter.
    pub serialization_aborts: u64,
    /// G2/write-skew cycles found by [`check_serializability`] — one per
    /// pair under plain SI, none under SSI.
    pub g2_violations: Vec<Violation>,
    /// Plain SI anomalies ([`check_anomalies`]) — must be empty in both
    /// modes: write skew is *allowed* under SI, it is not an SI anomaly.
    pub si_violations: Vec<Violation>,
}

impl WriteSkewReport {
    /// One-line summary for harness output.
    pub fn summary(&self) -> String {
        format!(
            "seed {:>3}: {} pairs ({}), {} committed, {} aborted, {} ssi-aborts, \
             {} G2 cycles, {} SI violations",
            self.seed,
            self.pairs,
            if self.serializable { "ssi" } else { "si" },
            self.committed_txns,
            self.aborted_txns,
            self.serialization_aborts,
            self.g2_violations.len(),
            self.si_violations.len()
        )
    }
}

/// One transaction's side of a planted write-skew pair.
struct SkewSide {
    txn: Txn,
    rec: TxnRecord,
}

/// Plants `pairs` textbook write skews and reports what survived.
///
/// For each pair `p` over keys `(2p, 2p+1)`, two concurrent
/// transactions interleave as: T1 reads both keys, T2 reads both keys,
/// T1 writes `2p`, T2 writes `2p+1`, T1 commits, T2 commits. The write
/// sets are disjoint, so first-updater-wins never fires and plain SI
/// acknowledges both — a G2 cycle of two rw-antidependencies that
/// [`check_serializability`] must flag with both transactions as
/// pivots. With [`ChaosConfig::serializable`] set, the SSI machinery
/// must instead abort exactly one transaction per pair (the second
/// writer, whose write would close the cycle) and the surviving
/// history must carry zero G2 cycles.
pub fn write_skew_scenario(cfg: &ChaosConfig, pairs: u64) -> WriteSkewReport {
    let db = SiasDb::open(StorageConfig::in_memory());
    if cfg.serializable {
        db.set_serializable();
    }
    let seqs: Arc<Mutex<HashMap<Xid, u64>>> = Arc::new(Mutex::new(HashMap::new()));
    {
        let seqs = Arc::clone(&seqs);
        db.txm().set_commit_hook(move |xid, seq| {
            seqs.lock().insert(xid, seq);
        });
    }
    let rel = db.create_relation("chaos");
    let mut history = History::default();
    let (mut committed, mut aborted) = (0u64, 0u64);

    let ack = |xid: Xid, mut rec: TxnRecord| -> TxnRecord {
        let seq = seqs.lock().remove(&xid).unwrap_or(0);
        rec.outcome = HistOutcome::Committed {
            commit_seq: seq,
            acked_at_record: db.stack().wal.durable_record_count(),
        };
        rec
    };

    // Setup: both keys of every pair exist.
    {
        let txn = db.begin();
        let xid = txn.xid;
        let mut rec = TxnRecord { xid, ops: Vec::new(), outcome: HistOutcome::Aborted };
        for key in 0..pairs * 2 {
            let tag = WriteTag { xid, seq: key as u32 };
            db.insert(&txn, rel, key, &tag.encode_payload(key)).expect("setup insert");
            rec.ops.push(HistOp::Write { key, tag });
        }
        db.commit(txn).expect("setup commit");
        history.txns.push(ack(xid, rec));
        committed += 1;
    }

    /// One step of the fixed interleaving, applied to side 0 or 1.
    enum Step {
        Read(u64),
        Write(u64),
        Commit,
    }

    for p in 0..pairs {
        let (a, b) = (2 * p, 2 * p + 1);
        let mut sides: [Option<SkewSide>; 2] = [0, 1].map(|_| {
            let txn = db.begin();
            let rec = TxnRecord { xid: txn.xid, ops: Vec::new(), outcome: HistOutcome::Aborted };
            Some(SkewSide { txn, rec })
        });
        // Each side reads BOTH keys of the constraint, then writes its
        // own — the cross reads are what make the histories skewed.
        let script: [(usize, Step); 8] = [
            (0, Step::Read(a)),
            (0, Step::Read(b)),
            (1, Step::Read(a)),
            (1, Step::Read(b)),
            (0, Step::Write(a)),
            (1, Step::Write(b)),
            (0, Step::Commit),
            (1, Step::Commit),
        ];
        for (idx, step) in script {
            if sides[idx].is_none() {
                continue; // side already aborted by the SSI machinery
            }
            match step {
                Step::Read(key) => match db.get(&sides[idx].as_ref().unwrap().txn, rel, key) {
                    Ok(bytes) => {
                        let observed =
                            bytes.and_then(|b| WriteTag::decode_payload(&b)).map(|(_, tag)| tag);
                        let side = sides[idx].as_mut().unwrap();
                        side.rec.ops.push(HistOp::Read { key, observed });
                    }
                    Err(_) => {
                        let side = sides[idx].take().unwrap();
                        db.abort(side.txn);
                        aborted += 1;
                        history.txns.push(side.rec);
                    }
                },
                Step::Write(key) => {
                    let side = sides[idx].as_mut().unwrap();
                    let tag = WriteTag { xid: side.txn.xid, seq: key as u32 };
                    match db.update(&side.txn, rel, key, &tag.encode_payload(key)) {
                        Ok(()) => side.rec.ops.push(HistOp::Write { key, tag }),
                        Err(_) => {
                            let side = sides[idx].take().unwrap();
                            db.abort(side.txn);
                            aborted += 1;
                            history.txns.push(side.rec);
                        }
                    }
                }
                Step::Commit => {
                    let side = sides[idx].take().unwrap();
                    let xid = side.txn.xid;
                    match db.commit(side.txn) {
                        Ok(()) => {
                            history.txns.push(ack(xid, side.rec));
                            committed += 1;
                        }
                        Err(_) => {
                            // SSI commit-time pivot abort (pre-WAL, so
                            // definitive).
                            aborted += 1;
                            history.txns.push(side.rec);
                        }
                    }
                }
            }
        }
    }

    history.version_order = extract_version_order(&db, "chaos", &history.committed());
    let g2_violations = check_serializability(&history);
    let si_violations = check_anomalies(&history);
    WriteSkewReport {
        seed: cfg.seed,
        pairs,
        serializable: cfg.serializable,
        committed_txns: committed,
        aborted_txns: aborted,
        serialization_aborts: db.serialization_aborts(),
        g2_violations,
        si_violations,
    }
}

/// Verdict of one seeded log-exhaustion run: the WAL quota is filled
/// under load, the engine must degrade to read-only with typed
/// rejections (never a panic, never a torn append), keep serving reads,
/// reclaim space, and return to healthy — all black-box checked.
#[derive(Clone, Debug)]
pub struct EnospcReport {
    /// The seed that produced this run.
    pub seed: u64,
    /// Transactions acknowledged as committed.
    pub committed_txns: u64,
    /// Transactions aborted (client choice or typed space rejection).
    pub aborted_txns: u64,
    /// Writes rejected with a typed resource-exhaustion error.
    pub writes_rejected: u64,
    /// Peak `storage.space.wal_used_pct` observed.
    pub peak_used_pct: u64,
    /// Whether the health machine observably entered ReadOnly
    /// (`storage.health.readonly_entered` and a live-state probe).
    pub readonly_entered: bool,
    /// Whether reads kept serving while the engine was read-only.
    pub reads_served_readonly: bool,
    /// Whether the engine returned to Healthy after reclaim.
    pub recovered: bool,
    /// WAL bytes freed by the emergency reclaim.
    pub reclaimed_bytes: u64,
    /// SI anomalies over the whole history, post-reclaim probe included
    /// — must be empty.
    pub violations: Vec<Violation>,
}

impl EnospcReport {
    /// One-line summary for harness output.
    pub fn summary(&self) -> String {
        format!(
            "seed {:>3}: {} committed, {} aborted, {} rejected, peak {}%, \
             readonly {}, reads-in-readonly {}, recovered {}, {} bytes reclaimed, {} violations",
            self.seed,
            self.committed_txns,
            self.aborted_txns,
            self.writes_rejected,
            self.peak_used_pct,
            self.readonly_entered,
            self.reads_served_readonly,
            self.recovered,
            self.reclaimed_bytes,
            self.violations.len()
        )
    }
}

/// Runs a seeded serial tagged workload against an engine whose WAL
/// lives under a tiny logical quota (`wal_quota_pages` with the given
/// low watermark; the hard watermark sits 20 points above it). The
/// write storm fills the log past the hard watermark, at which point
/// the health machine must enter ReadOnly and every further write must
/// be rejected with a typed error. The scenario then verifies reads
/// still serve, triggers the emergency reclaim (vacuum + checkpoint +
/// WAL truncation via the engine's own maintenance path), and checks
/// the return to Healthy. The whole history — rejections, read-only
/// probe, and post-reclaim writes included — must show zero anomalies.
pub fn enospc_scenario(
    cfg: &ChaosConfig,
    wal_quota_pages: u64,
    low_watermark_pct: u64,
) -> EnospcReport {
    let low = low_watermark_pct.clamp(10, 75);
    let hard = (low + 20).min(95);
    let storage = StorageConfig::in_memory()
        .with_pool_frames(48)
        .with_wal_quota_pages(wal_quota_pages)
        .with_space_watermarks(low, hard);
    let db = SiasDb::open(storage);
    let seqs: Arc<Mutex<HashMap<Xid, u64>>> = Arc::new(Mutex::new(HashMap::new()));
    {
        let seqs = Arc::clone(&seqs);
        db.txm().set_commit_hook(move |xid, seq| {
            seqs.lock().insert(xid, seq);
        });
    }
    let rel = db.create_relation("chaos");
    let mut history = History::default();
    let mut rng = Rng(cfg.seed ^ 0xe05_0e05);
    let (mut committed, mut aborted, mut rejected) = (0u64, 0u64, 0u64);
    let mut peak_used_pct = 0u64;

    let ack = |xid: Xid, mut rec: TxnRecord| -> TxnRecord {
        let seq = seqs.lock().remove(&xid).unwrap_or(0);
        rec.outcome = HistOutcome::Committed {
            commit_seq: seq,
            acked_at_record: db.stack().wal.durable_record_count(),
        };
        rec
    };

    // Setup: every key exists (the quota is sized to survive setup).
    {
        let txn = db.begin();
        let xid = txn.xid;
        let mut rec = TxnRecord { xid, ops: Vec::new(), outcome: HistOutcome::Aborted };
        for key in 0..cfg.keys {
            let tag = WriteTag { xid, seq: key as u32 };
            db.insert(&txn, rel, key, &tag.encode_payload(key)).expect("setup insert");
            rec.ops.push(HistOp::Write { key, tag });
        }
        db.commit(txn).expect("setup commit");
        history.txns.push(ack(xid, rec));
        committed += 1;
    }

    // Write storm: serial read-modify-write rounds until the quota
    // rejects us (bounded in case the quota is too generous to fill).
    let mut storm_rounds = 0u32;
    'storm: while db.stack().health.state() != sias_storage::HealthState::ReadOnly {
        storm_rounds += 1;
        if storm_rounds > 50_000 {
            break; // quota never filled; the gate below will fail loudly
        }
        let txn = db.begin();
        let xid = txn.xid;
        let mut rec = TxnRecord { xid, ops: Vec::new(), outcome: HistOutcome::Aborted };
        for seq in 0..cfg.ops_per_txn as u32 {
            let key = rng.next() % cfg.keys;
            let observed = match db.get(&txn, rel, key) {
                Ok(Some(bytes)) => WriteTag::decode_payload(&bytes).map(|(_, tag)| tag),
                Ok(None) => None,
                Err(e) => panic!("reads must never fail under space pressure: {e:?}"),
            };
            rec.ops.push(HistOp::Read { key, observed });
            let tag = WriteTag { xid, seq };
            match db.update(&txn, rel, key, &tag.encode_payload(key)) {
                Ok(()) => rec.ops.push(HistOp::Write { key, tag }),
                Err(e) => {
                    assert!(
                        e.is_resource_exhausted(),
                        "space pressure must reject with a typed error, got {e:?}"
                    );
                    rejected += 1;
                    db.abort(txn);
                    aborted += 1;
                    history.txns.push(rec);
                    peak_used_pct = peak_used_pct.max(db.stack().wal_used_pct());
                    continue 'storm;
                }
            }
        }
        peak_used_pct = peak_used_pct.max(db.stack().wal_used_pct());
        match db.commit(txn) {
            Ok(()) => {
                history.txns.push(ack(xid, rec));
                committed += 1;
            }
            Err(e) => {
                assert!(
                    e.is_resource_exhausted(),
                    "commit under space pressure must fail typed, got {e:?}"
                );
                rejected += 1;
                aborted += 1;
                // Outcome uncertain (the record may become durable).
                rec.outcome = HistOutcome::Unacked;
                history.txns.push(rec);
            }
        }
    }
    let readonly_entered = db.stack().health.state() == sias_storage::HealthState::ReadOnly
        && db.stack().obs.counter("storage.health.readonly_entered").get() > 0;

    // Degraded contract, probed while read-only: reads serve, writes
    // fail fast with a typed error.
    let mut reads_served_readonly = readonly_entered;
    if readonly_entered {
        let txn = db.begin();
        let xid = txn.xid;
        let mut rec = TxnRecord { xid, ops: Vec::new(), outcome: HistOutcome::Aborted };
        for key in 0..cfg.keys {
            match db.get(&txn, rel, key) {
                Ok(observed) => rec.ops.push(HistOp::Read {
                    key,
                    observed: observed
                        .and_then(|b| WriteTag::decode_payload(&b))
                        .map(|(_, tag)| tag),
                }),
                Err(_) => reads_served_readonly = false,
            }
        }
        let tag = WriteTag { xid, seq: 0 };
        match db.update(&txn, rel, 0, &tag.encode_payload(0)) {
            Err(e) if e.is_resource_exhausted() => rejected += 1,
            other => panic!("read-only mode must reject writes typed, got {other:?}"),
        }
        db.abort(txn);
        aborted += 1;
        history.txns.push(rec);
    }

    // Emergency reclaim through the engine's own maintenance path:
    // vacuum + checkpoint + WAL truncation, healing the health machine.
    let live_before = db.stack().wal.live_bytes();
    db.maintenance(true);
    let reclaimed_bytes = live_before.saturating_sub(db.stack().wal.live_bytes());
    let recovered = db.stack().health.state() == sias_storage::HealthState::Healthy
        && db.stack().obs.counter("storage.health.recovered").get() > 0;

    // Post-reclaim probe: the engine is writable again, and the new
    // commits join the same checked history.
    if recovered {
        let txn = db.begin();
        let xid = txn.xid;
        let mut rec = TxnRecord { xid, ops: Vec::new(), outcome: HistOutcome::Aborted };
        for seq in 0..cfg.keys.min(4) as u32 {
            let key = u64::from(seq);
            let observed = db
                .get(&txn, rel, key)
                .expect("post-reclaim read")
                .and_then(|b| WriteTag::decode_payload(&b))
                .map(|(_, tag)| tag);
            rec.ops.push(HistOp::Read { key, observed });
            let tag = WriteTag { xid, seq };
            db.update(&txn, rel, key, &tag.encode_payload(key))
                .expect("post-reclaim write must succeed");
            rec.ops.push(HistOp::Write { key, tag });
        }
        db.commit(txn).expect("post-reclaim commit");
        history.txns.push(ack(xid, rec));
        committed += 1;
    }

    history.version_order = extract_version_order(&db, "chaos", &history.committed());
    let violations = check_anomalies(&history);
    EnospcReport {
        seed: cfg.seed,
        committed_txns: committed,
        aborted_txns: aborted,
        writes_rejected: rejected,
        peak_used_pct,
        readonly_entered,
        reads_served_readonly,
        recovered,
        reclaimed_bytes,
        violations,
    }
}

/// Deterministic digest over the log, the history and the verdicts.
fn fingerprint(cfg: &ChaosConfig, run: &ChaosRun, violations: &[(u64, Violation)]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    cfg.seed.hash(&mut h);
    cfg.txns.hash(&mut h);
    cfg.keys.hash(&mut h);
    cfg.ops_per_txn.hash(&mut h);
    cfg.terminals.hash(&mut h);
    cfg.plant_durability_bug.hash(&mut h);
    cfg.serializable.hash(&mut h);
    run.records.len().hash(&mut h);
    for rec in &run.records {
        format!("{rec:?}").hash(&mut h);
    }
    for t in &run.history.txns {
        format!("{:?}|{:?}", t.xid, t.outcome).hash(&mut h);
        t.ops.len().hash(&mut h);
    }
    for (point, v) in violations {
        point.hash(&mut h);
        v.condition.hash(&mut h);
        v.detail.hash(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_run_has_no_violations() {
        let report = crash_matrix(&ChaosConfig::with_seed(7), 16);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.committed_txns > 5, "workload did commit work: {}", report.committed_txns);
        assert!(report.conflicts > 0, "contention produced first-updater-wins conflicts");
        assert!(report.total_records > 50);
        assert!(report.crash_points >= 3);
    }

    #[test]
    fn same_seed_same_fingerprint() {
        let a = crash_matrix(&ChaosConfig::with_seed(11), 8);
        let b = crash_matrix(&ChaosConfig::with_seed(11), 8);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.total_records, b.total_records);
        assert_eq!(a.committed_txns, b.committed_txns);
        let c = crash_matrix(&ChaosConfig::with_seed(12), 8);
        assert_ne!(a.fingerprint, c.fingerprint, "different seed, different run");
    }

    #[test]
    fn planted_ack_before_force_bug_is_caught() {
        let cfg = ChaosConfig { plant_durability_bug: true, ..ChaosConfig::with_seed(7) };
        let report = crash_matrix(&cfg, 4);
        assert!(
            report.violations.iter().any(|(_, v)| v.condition == "DUR-ACK"),
            "the ack-before-force bug must surface as DUR-ACK: {:?}",
            report.violations
        );
        // The bug corrupts acknowledgement bookkeeping only — state and
        // prefix consistency of the engine itself remain clean.
        assert!(report.violations.iter().all(|(_, v)| v.condition == "DUR-ACK"));
    }

    #[test]
    fn data_device_faults_do_not_shake_the_verdict() {
        // Large enough to overflow the tiny pool (so eviction traffic
        // hits the device) and hostile enough that faults really fire.
        let cfg = ChaosConfig {
            txns: 120,
            keys: 400,
            data_faults: FaultConfig {
                torn_write_ppm: 200_000,
                dropped_write_ppm: 100_000,
                transient_error_ppm: 150_000,
                bitrot_ppm: 50_000,
                ..FaultConfig::hostile(99)
            },
            ..ChaosConfig::with_seed(3)
        };
        let report = crash_matrix(&cfg, 64);
        assert!(report.faults_injected > 0, "hostile device must actually fault");
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.committed_txns > 0);
    }

    #[test]
    fn scrub_scenario_repairs_seeded_bit_rot_cleanly() {
        let report = scrub_scenario(&ChaosConfig::with_seed(21), 3);
        assert!(report.committed_txns > 5);
        assert!(report.pages_scanned > 0);
        assert!(report.pages_corrupt > 0, "seeded rot must corrupt at least one page");
        assert_eq!(report.pages_corrupt, report.pages_repaired, "every corrupt page repaired");
        assert!(report.chains_rebuilt > 0);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn scrub_scenario_is_deterministic() {
        let a = scrub_scenario(&ChaosConfig::with_seed(33), 2);
        let b = scrub_scenario(&ChaosConfig::with_seed(33), 2);
        assert_eq!(a.committed_txns, b.committed_txns);
        assert_eq!(a.pages_corrupt, b.pages_corrupt);
        assert_eq!(a.chains_rebuilt, b.chains_rebuilt);
    }

    #[test]
    fn enospc_scenario_degrades_and_recovers_cleanly() {
        let report = enospc_scenario(&ChaosConfig::with_seed(11), 24, 50);
        assert!(report.readonly_entered, "quota must fill: {}", report.summary());
        assert!(report.reads_served_readonly, "{}", report.summary());
        assert!(report.recovered, "{}", report.summary());
        assert!(report.writes_rejected > 0, "{}", report.summary());
        assert!(report.reclaimed_bytes > 0, "{}", report.summary());
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn enospc_scenario_is_deterministic() {
        let a = enospc_scenario(&ChaosConfig::with_seed(17), 24, 50);
        let b = enospc_scenario(&ChaosConfig::with_seed(17), 24, 50);
        assert_eq!(a.committed_txns, b.committed_txns);
        assert_eq!(a.aborted_txns, b.aborted_txns);
        assert_eq!(a.writes_rejected, b.writes_rejected);
        assert_eq!(a.peak_used_pct, b.peak_used_pct);
    }

    #[test]
    fn planted_write_skew_is_g2_under_si() {
        let report = write_skew_scenario(&ChaosConfig::with_seed(9), 4);
        assert_eq!(report.committed_txns, 9, "setup + two per pair commit under plain SI");
        assert_eq!(report.aborted_txns, 0);
        assert_eq!(report.serialization_aborts, 0);
        assert!(
            report.si_violations.is_empty(),
            "write skew is not an SI anomaly: {:?}",
            report.si_violations
        );
        assert_eq!(report.g2_violations.len(), 4, "{:?}", report.g2_violations);
        assert!(report.g2_violations.iter().all(|v| v.condition == "G2"));
        assert!(
            report.g2_violations.iter().all(|v| v.detail.contains("pivots")),
            "witness names its pivots: {:?}",
            report.g2_violations
        );
    }

    #[test]
    fn ssi_aborts_every_planted_write_skew() {
        let cfg = ChaosConfig { serializable: true, ..ChaosConfig::with_seed(9) };
        let report = write_skew_scenario(&cfg, 4);
        assert_eq!(report.aborted_txns, 4, "exactly one victim per pair");
        assert_eq!(report.committed_txns, 5, "setup + one survivor per pair");
        assert_eq!(report.serialization_aborts, 4);
        assert!(report.g2_violations.is_empty(), "{:?}", report.g2_violations);
        assert!(report.si_violations.is_empty(), "{:?}", report.si_violations);
    }

    #[test]
    fn ssi_chaos_run_stays_clean_and_deterministic() {
        let cfg = ChaosConfig { serializable: true, ..ChaosConfig::with_seed(7) };
        let report = crash_matrix(&cfg, 16);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.committed_txns > 5, "SSI still commits work: {}", report.committed_txns);
        let again = crash_matrix(&cfg, 16);
        assert_eq!(report.fingerprint, again.fingerprint, "SSI runs stay reproducible");
        let si = crash_matrix(&ChaosConfig::with_seed(7), 16);
        assert_ne!(report.fingerprint, si.fingerprint, "mode is part of the fingerprint");
    }

    #[test]
    fn chaos_run_records_reads_and_writes() {
        let run = run_chaos(&ChaosConfig::with_seed(5));
        let reads = run
            .history
            .txns
            .iter()
            .flat_map(|t| &t.ops)
            .filter(|op| matches!(op, HistOp::Read { .. }))
            .count();
        let writes = run
            .history
            .txns
            .iter()
            .flat_map(|t| &t.ops)
            .filter(|op| matches!(op, HistOp::Write { .. }))
            .count();
        assert!(reads > 20, "reads recorded: {reads}");
        assert!(writes > 20, "writes recorded: {writes}");
        assert!(!run.history.version_order.is_empty());
        // Every observed tag refers to a transaction the history knows.
        let known: BTreeSet<Xid> = run.history.txns.iter().map(|t| t.xid).collect();
        for t in &run.history.txns {
            for op in &t.ops {
                if let HistOp::Read { observed: Some(tag), .. } = op {
                    assert!(known.contains(&tag.xid), "read of unknown writer {tag:?}");
                }
            }
        }
    }
}
