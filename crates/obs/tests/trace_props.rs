//! Flight-recorder guarantees under concurrency: the seqlock ring never
//! tears, never under-reports drops, and keeps per-thread event order;
//! span open/close accounting always balances; the Chrome exporter's
//! byte format is pinned by a golden test.

use std::sync::Arc;

use proptest::prelude::*;
use sias_obs::export::{to_chrome_trace, to_jsonl};
use sias_obs::{EventKind, FlightRecorder, SpanName, TraceConfig, TraceEvent};

/// All recording threads use a small rotation of names so decode
/// round-trips are exercised across the enum.
const NAMES: [SpanName; 4] =
    [SpanName::TxnCommit, SpanName::WalAppend, SpanName::PoolMiss, SpanName::EngineGet];

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// 8 writer threads hammer a deliberately tiny ring. Afterwards the
    /// books must balance exactly: every claimed ticket was either
    /// retained in the window or counted as dropped, the window never
    /// exceeds its configured capacity, and each thread's surviving
    /// events keep their program order (per-shard tickets are monotone
    /// for a fixed thread).
    #[test]
    fn ring_wraparound_accounting_is_exact(
        shards in 1usize..4,
        capacity in 2usize..32,
        per_thread in 1u64..200,
    ) {
        let rec = Arc::new(FlightRecorder::new(TraceConfig {
            shards,
            capacity,
            slow_capacity: 8,
            slow_threshold_ns: 0,
        }));
        rec.set_enabled(true);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let rec = Arc::clone(&rec);
                s.spawn(move || {
                    for i in 0..per_thread {
                        rec.instant(NAMES[(i % 4) as usize], t, i);
                    }
                });
            }
        });
        let total = 8 * per_thread;
        prop_assert_eq!(rec.total_recorded(), total);
        let events = rec.capture();
        prop_assert!(events.len() as u64 <= (shards * capacity) as u64);
        prop_assert_eq!(events.len() as u64 + rec.dropped(), total,
            "window {} + dropped {} != recorded {}", events.len(), rec.dropped(), total);
        // Program order per writer: `arg` carries the thread-local
        // counter, and a thread's shard tickets grow with time.
        let mut by_writer: std::collections::BTreeMap<u64, Vec<&TraceEvent>> = Default::default();
        for e in &events {
            prop_assert_eq!(e.kind, EventKind::Instant);
            by_writer.entry(e.txn).or_default().push(e);
        }
        for (writer, mut evs) in by_writer {
            evs.sort_by_key(|e| e.seq);
            for w in evs.windows(2) {
                prop_assert!(w[0].arg < w[1].arg,
                    "writer {} events reordered: arg {} then {}", writer, w[0].arg, w[1].arg);
            }
        }
    }

    /// Open/close accounting balances for arbitrary nesting shapes: any
    /// sequence of push/pop actions across threads ends with zero open
    /// spans once every guard has dropped.
    #[test]
    fn span_balance_always_closes(depths in proptest::collection::vec(1usize..6, 1..8)) {
        let rec = Arc::new(FlightRecorder::new(TraceConfig::default()));
        rec.set_enabled(true);
        std::thread::scope(|s| {
            for depth in depths.clone() {
                let rec = Arc::clone(&rec);
                s.spawn(move || {
                    fn nest(rec: &FlightRecorder, d: usize) {
                        let _g = rec.span(SpanName::TxnBegin);
                        if d > 1 {
                            nest(rec, d - 1);
                        }
                    }
                    nest(&rec, depth);
                });
            }
        });
        let opened: usize = depths.iter().sum();
        prop_assert_eq!(rec.spans_opened(), opened as u64);
        prop_assert_eq!(rec.open_spans(), 0, "unbalanced spans after all guards dropped");
        prop_assert_eq!(rec.capture().len(), opened);
    }
}

/// Chrome `trace_event` output is byte-for-byte pinned: tooling parses
/// this format, so drift is a break, not a style change.
#[test]
fn chrome_trace_golden() {
    let events = [
        TraceEvent {
            seq: 0,
            kind: EventKind::Span,
            name: SpanName::TxnCommit,
            tid: 1,
            depth: 0,
            start_ns: 1_500,
            dur_ns: 2_034_567,
            txn: 42,
            arg: 0,
        },
        TraceEvent {
            seq: 1,
            kind: EventKind::Instant,
            name: SpanName::AnomalyFlag,
            tid: 2,
            depth: 0,
            start_ns: 3_000_001,
            dur_ns: 0,
            txn: 7,
            arg: 96,
        },
    ];
    let golden = concat!(
        "{\"traceEvents\":[\n",
        "  {\"name\":\"txn.commit\",\"cat\":\"txn\",\"ph\":\"X\",\"ts\":1.500,\"dur\":2034.567,",
        "\"pid\":1,\"tid\":1,\"args\":{\"txn\":42,\"arg\":0,\"depth\":0}},\n",
        "  {\"name\":\"anomaly.flag\",\"cat\":\"anomaly\",\"ph\":\"i\",\"s\":\"t\",\"ts\":3000.001,",
        "\"pid\":1,\"tid\":2,\"args\":{\"txn\":7,\"arg\":96,\"depth\":0}}\n",
        "]}\n",
    );
    assert_eq!(to_chrome_trace(&events), golden);
    // And the JSONL twin stays one-object-per-line with the same count.
    let jsonl = to_jsonl(&events);
    assert_eq!(jsonl.lines().count(), events.len());
}

/// A recorder that is never enabled records nothing and allocates no
/// ring memory, no matter how many spans and instants fly at it.
#[test]
fn disabled_tracing_records_zero_events() {
    let rec = FlightRecorder::new(TraceConfig::default());
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let rec = &rec;
            s.spawn(move || {
                for i in 0..1_000 {
                    let _g = rec.span(SpanName::EngineUpdate).txn(t).arg(i);
                    rec.instant(SpanName::PoolMiss, t, i);
                }
            });
        }
    });
    assert_eq!(rec.total_recorded(), 0);
    assert_eq!(rec.dropped(), 0);
    assert_eq!(rec.memory_bytes(), 0, "disabled recorder must not allocate rings");
    assert!(rec.capture().is_empty());
    assert!(rec.capture_slow().is_empty());
}
