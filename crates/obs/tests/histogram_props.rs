//! Property tests for histogram bucket boundaries and quantile math.

use proptest::prelude::*;
use sias_obs::{bucket_hi, bucket_index, bucket_lo, Histogram, HISTOGRAM_BUCKETS};

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    /// Every value lands in a bucket whose [lo, hi] range contains it.
    #[test]
    fn bucket_contains_its_values(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < HISTOGRAM_BUCKETS);
        prop_assert!(bucket_lo(i) <= v, "lo {} > v {}", bucket_lo(i), v);
        prop_assert!(v <= bucket_hi(i), "v {} > hi {}", v, bucket_hi(i));
    }

    /// Bucket boundaries tile the u64 domain without gaps or overlap.
    #[test]
    fn buckets_tile_the_domain(i in 1usize..HISTOGRAM_BUCKETS) {
        prop_assert_eq!(bucket_lo(i), bucket_hi(i - 1).wrapping_add(1));
        prop_assert!(bucket_lo(i) <= bucket_hi(i));
    }

    /// Quantiles are monotone in q, bounded by the observed max, and the
    /// histogram's count/sum/max match the recorded values exactly.
    #[test]
    fn quantiles_are_sane(values in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let max = *values.iter().max().unwrap();
        let sum: u64 = values.iter().sum();
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), sum);
        prop_assert_eq!(h.max(), max);

        let (p50, p95, p99) = (h.quantile(0.50), h.quantile(0.95), h.quantile(0.99));
        prop_assert!(p50 <= p95 && p95 <= p99, "p50 {p50} p95 {p95} p99 {p99}");
        prop_assert!(p99 <= max, "p99 {p99} > max {max}");

        // A quantile estimate never leaves the bucket that holds the true
        // rank-q observation: error is bounded by one power of two.
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for (q, est) in [(0.50, p50), (0.95, p95), (0.99, p99)] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            prop_assert_eq!(
                bucket_index(est), bucket_index(exact),
                "q={} est={} exact={}", q, est, exact
            );
        }
    }

    /// The summary digest agrees with direct accessor reads.
    #[test]
    fn summary_matches_accessors(values in proptest::collection::vec(any::<u64>(), 0..64)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let s = h.summary();
        prop_assert_eq!(s.count, h.count());
        prop_assert_eq!(s.max, h.max());
        prop_assert_eq!(s.p50, h.quantile(0.50));
        prop_assert_eq!(s.p99, h.quantile(0.99));
    }
}
