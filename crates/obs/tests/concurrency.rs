//! Concurrent-recording guarantees: increments from many threads sum
//! exactly, and snapshotting while recording never panics or loses a
//! committed increment.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use sias_obs::Registry;

const THREADS: usize = 8;
const PER_THREAD: u64 = 50_000;

#[test]
fn concurrent_recording_sums_exactly() {
    let reg = Registry::new_shared();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let reg = Arc::clone(&reg);
            s.spawn(move || {
                let c = reg.counter("test.concurrent.counter");
                let g = reg.gauge("test.concurrent.gauge");
                let h = reg.histogram("test.concurrent.hist");
                for i in 0..PER_THREAD {
                    c.inc();
                    g.add(1);
                    h.record((t as u64) * PER_THREAD + i);
                }
            });
        }
    });
    let total = THREADS as u64 * PER_THREAD;
    let snap = reg.snapshot();
    assert_eq!(snap.counter("test.concurrent.counter"), Some(total));
    assert_eq!(snap.gauge("test.concurrent.gauge"), Some(total as i64));
    let h = snap.histogram("test.concurrent.hist").unwrap();
    assert_eq!(h.count, total);
    assert_eq!(h.max, total - 1);
    // Sum of 0..total.
    assert_eq!(h.sum, total * (total - 1) / 2);
}

#[test]
fn snapshot_while_recording_never_loses_committed_increments() {
    let reg = Registry::new_shared();
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        // Writers: bump a counter, and register a bounded set of fresh
        // metrics to force the registry's map to grow under the
        // snapshotter (bounded, so snapshot cost stays flat).
        for t in 0..4 {
            let reg = Arc::clone(&reg);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let c = reg.counter("test.snap.counter");
                let h = reg.histogram("test.snap.hist");
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    c.inc();
                    h.record(i % 1024);
                    if i.is_multiple_of(64) && i < 64 * 128 {
                        reg.counter(&format!("test.snap.extra.{t}.{}", i / 64)).inc();
                    }
                    i += 1;
                }
            });
        }
        // Snapshotter: monotone counter reads prove no committed
        // increment is ever lost; serialization must never panic.
        let reg2 = Arc::clone(&reg);
        let stop2 = Arc::clone(&stop);
        s.spawn(move || {
            let mut last = 0u64;
            for _ in 0..200 {
                let snap = reg2.snapshot();
                let now = snap.counter("test.snap.counter").unwrap_or(0);
                assert!(now >= last, "counter went backwards: {last} -> {now}");
                last = now;
                let _ = snap.to_json();
                let _ = snap.to_prometheus();
            }
            stop2.store(true, Ordering::Relaxed);
        });
    });

    // Quiesced: a final snapshot agrees with the live handles.
    let snap = reg.snapshot();
    assert_eq!(snap.counter("test.snap.counter").unwrap(), reg.counter("test.snap.counter").get());
    let h = snap.histogram("test.snap.hist").unwrap();
    assert_eq!(h.count, reg.histogram("test.snap.hist").count());
}
