//! Trace exporters: JSON-lines (one event per line, grep-friendly) and
//! Chrome `trace_event` JSON (loadable in `chrome://tracing` /
//! Perfetto). Both are hand-rolled like the metric serializers — the
//! formats are small and this crate takes no dependencies.

use crate::span::{EventKind, TraceEvent};

/// One JSON object per line:
///
/// ```json
/// {"seq":3,"kind":"span","name":"txn.commit","tid":1,"depth":0,"start_ns":120,"dur_ns":950,"txn":42,"arg":0}
/// ```
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        push_jsonl_event(&mut out, e);
        out.push('\n');
    }
    out
}

fn push_jsonl_event(out: &mut String, e: &TraceEvent) {
    let kind = match e.kind {
        EventKind::Span => "span",
        EventKind::Instant => "instant",
    };
    out.push_str(&format!(
        "{{\"seq\":{},\"kind\":\"{}\",\"name\":\"{}\",\"tid\":{},\"depth\":{},\
         \"start_ns\":{},\"dur_ns\":{},\"txn\":{},\"arg\":{}}}",
        e.seq,
        kind,
        e.name.as_str(),
        e.tid,
        e.depth,
        e.start_ns,
        e.dur_ns,
        e.txn,
        e.arg
    ));
}

/// Chrome `trace_event` format (JSON object form):
///
/// ```json
/// {"traceEvents":[
///   {"name":"txn.commit","cat":"txn","ph":"X","ts":0.120,"dur":0.950,
///    "pid":1,"tid":1,"args":{"txn":42,"arg":0,"depth":0}},
///   {"name":"chaos.crash","cat":"chaos","ph":"i","s":"t","ts":5.000,
///    "pid":1,"tid":2,"args":{"txn":0,"arg":0,"depth":0}}
/// ]}
/// ```
///
/// Timestamps are microseconds (the format's unit) with nanosecond
/// precision kept as three decimals. `cat` is the name's first dotted
/// segment so the viewer can filter by subsystem.
pub fn to_chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  ");
        push_chrome_event(&mut out, e);
    }
    out.push_str("\n]}\n");
    out
}

fn push_chrome_event(out: &mut String, e: &TraceEvent) {
    let name = e.name.as_str();
    let cat = name.split('.').next().unwrap_or(name);
    out.push_str(&format!("{{\"name\":\"{name}\",\"cat\":\"{cat}\","));
    match e.kind {
        EventKind::Span => {
            out.push_str(&format!(
                "\"ph\":\"X\",\"ts\":{},\"dur\":{},",
                us(e.start_ns),
                us(e.dur_ns)
            ));
        }
        EventKind::Instant => {
            out.push_str(&format!("\"ph\":\"i\",\"s\":\"t\",\"ts\":{},", us(e.start_ns)));
        }
    }
    out.push_str(&format!(
        "\"pid\":1,\"tid\":{},\"args\":{{\"txn\":{},\"arg\":{},\"depth\":{}}}}}",
        e.tid, e.txn, e.arg, e.depth
    ));
}

/// Formats nanoseconds as decimal microseconds with exactly three
/// fractional digits (no float rounding: pure integer math).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanName;

    fn span(seq: u64, name: SpanName, start_ns: u64, dur_ns: u64) -> TraceEvent {
        TraceEvent {
            seq,
            kind: EventKind::Span,
            name,
            tid: 1,
            depth: 0,
            start_ns,
            dur_ns,
            txn: 0,
            arg: 0,
        }
    }

    #[test]
    fn jsonl_one_line_per_event() {
        let events =
            vec![span(0, SpanName::TxnCommit, 100, 50), span(1, SpanName::WalForce, 120, 10)];
        let s = to_jsonl(&events);
        assert_eq!(s.lines().count(), 2);
        assert!(s.lines().next().unwrap().contains("\"name\":\"txn.commit\""));
        assert!(s.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn chrome_ts_is_exact_microseconds() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(1), "0.001");
        assert_eq!(us(999), "0.999");
        assert_eq!(us(1_000), "1.000");
        assert_eq!(us(1_234_567), "1234.567");
    }

    #[test]
    fn chrome_trace_shape() {
        let mut instant = span(2, SpanName::ChaosCrash, 5_000, 0);
        instant.kind = EventKind::Instant;
        instant.tid = 2;
        let events = vec![span(0, SpanName::TxnCommit, 120, 950), instant];
        let s = to_chrome_trace(&events);
        assert!(s.starts_with("{\"traceEvents\":["));
        assert!(s.contains("\"ph\":\"X\",\"ts\":0.120,\"dur\":0.950"));
        assert!(s.contains("\"cat\":\"txn\""));
        assert!(s.contains("\"ph\":\"i\",\"s\":\"t\",\"ts\":5.000"));
        assert!(s.trim_end().ends_with("]}"));
    }
}
