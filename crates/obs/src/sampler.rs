//! Time-series sampling: periodic registry snapshots reduced to
//! per-interval deltas — throughput over time and per-interval latency
//! quantiles, instead of one cumulative number per run.
//!
//! The core ([`Sampler`]) is synchronous and clock-free: callers decide
//! when a tick happens and what the timestamp is, which makes it usable
//! from the virtual-clock benchmark drivers and deterministic in tests.
//! [`SamplerHandle`] wraps it in a background thread on a wall-clock
//! interval for the threaded benches.
//!
//! Per-interval histogram quantiles come from *bucket-count diffs*:
//! cumulative log2 bucket counts are monotone, so subtracting the
//! previous tick's counts yields the interval's own distribution, which
//! [`quantile_from_counts`] reduces exactly as the cumulative path does.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::metric::quantile_from_counts;
use crate::snapshot::{push_json_string, MetricsSnapshot, SampleValue};
use crate::Registry;

/// Per-interval digest of one histogram.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IntervalHistogram {
    /// Observations recorded during the interval.
    pub count: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
}

/// One sampling tick: counter deltas, gauge levels, histogram interval
/// digests. Metrics that did not move during the interval are omitted
/// from `counters`/`histograms` (gauges are always reported — a level
/// holding steady is information).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SeriesPoint {
    /// Tick timestamp in nanoseconds on the caller's timeline.
    pub t_ns: u64,
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, IntervalHistogram>,
}

/// The collected series.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TimeSeries {
    pub points: Vec<SeriesPoint>,
}

impl TimeSeries {
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Serializes as a JSON object:
    ///
    /// ```json
    /// {"points": [
    ///   {"t_ns": 1000000, "counters": {"workload.driver.commits": 42},
    ///    "gauges": {"txn.manager.active": 3},
    ///    "histograms": {"workload.driver.response_us":
    ///                   {"count": 42, "p50": 180, "p95": 900, "p99": 1800}}}
    /// ]}
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"points\": [");
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  ");
            push_point(&mut out, p);
        }
        out.push_str("\n]}\n");
        out
    }
}

fn push_point(out: &mut String, p: &SeriesPoint) {
    out.push_str(&format!("{{\"t_ns\": {}, \"counters\": {{", p.t_ns));
    for (i, (name, v)) in p.counters.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_json_string(out, name);
        out.push_str(&format!(": {v}"));
    }
    out.push_str("}, \"gauges\": {");
    for (i, (name, v)) in p.gauges.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_json_string(out, name);
        out.push_str(&format!(": {v}"));
    }
    out.push_str("}, \"histograms\": {");
    for (i, (name, h)) in p.histograms.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_json_string(out, name);
        out.push_str(&format!(
            ": {{\"count\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
            h.count, h.p50, h.p95, h.p99
        ));
    }
    out.push_str("}}");
}

/// Synchronous sampling core: call [`Sampler::tick`] every K units of
/// whatever clock the caller runs on.
pub struct Sampler {
    registry: Arc<Registry>,
    last: MetricsSnapshot,
    series: TimeSeries,
}

impl Sampler {
    /// The first tick's deltas are relative to the registry state here.
    pub fn new(registry: Arc<Registry>) -> Self {
        let last = registry.snapshot();
        Sampler { registry, last, series: TimeSeries::default() }
    }

    /// Takes a snapshot, records the interval since the previous tick as
    /// a [`SeriesPoint`] stamped `t_ns`.
    pub fn tick(&mut self, t_ns: u64) {
        let now = self.registry.snapshot();
        let mut point = SeriesPoint { t_ns, ..SeriesPoint::default() };
        for s in now.samples() {
            match &s.value {
                SampleValue::Counter(v) => {
                    // saturating: reset_all between ticks would otherwise underflow.
                    let delta = v.saturating_sub(self.last.counter(&s.name).unwrap_or(0));
                    if delta > 0 {
                        point.counters.insert(s.name.clone(), delta);
                    }
                }
                SampleValue::Gauge(v) => {
                    point.gauges.insert(s.name.clone(), *v);
                }
                SampleValue::Histogram(h) => {
                    let prev = self.last.histogram_buckets(&s.name);
                    let mut diff = h.buckets;
                    if let Some(prev) = prev {
                        for (d, p) in diff.iter_mut().zip(prev.iter()) {
                            *d = d.saturating_sub(*p);
                        }
                    }
                    let count: u64 = diff.iter().sum();
                    if count > 0 {
                        point.histograms.insert(
                            s.name.clone(),
                            IntervalHistogram {
                                count,
                                p50: quantile_from_counts(&diff, h.summary.max, 0.50),
                                p95: quantile_from_counts(&diff, h.summary.max, 0.95),
                                p99: quantile_from_counts(&diff, h.summary.max, 0.99),
                            },
                        );
                    }
                }
            }
        }
        self.last = now;
        self.series.points.push(point);
    }

    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    pub fn into_series(self) -> TimeSeries {
        self.series
    }
}

/// Background wall-clock sampler: snapshots the registry every
/// `interval` until stopped. Stopping takes one final tick so the tail
/// interval is never lost.
pub struct SamplerHandle {
    stop: Arc<AtomicBool>,
    join: std::thread::JoinHandle<TimeSeries>,
}

impl SamplerHandle {
    pub fn spawn(registry: Arc<Registry>, interval: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let join = std::thread::Builder::new()
            .name("obs-sampler".into())
            .spawn(move || {
                let start = Instant::now();
                let mut sampler = Sampler::new(registry);
                // Sleep in small slices so stop() returns promptly even
                // with a long interval.
                let slice = interval.min(Duration::from_millis(20)).max(Duration::from_millis(1));
                let mut next = start + interval;
                while !stop2.load(Ordering::Relaxed) {
                    std::thread::sleep(slice);
                    let now = Instant::now();
                    if now >= next {
                        sampler.tick(ns_u64(now - start));
                        next += interval;
                    }
                }
                sampler.tick(ns_u64(start.elapsed()));
                sampler.into_series()
            })
            .expect("spawn obs-sampler thread");
        SamplerHandle { stop, join }
    }

    /// Signals the thread, waits for it, returns the collected series.
    pub fn stop(self) -> TimeSeries {
        self.stop.store(true, Ordering::Relaxed);
        self.join.join().unwrap_or_default()
    }
}

fn ns_u64(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_record_interval_deltas_not_cumulative() {
        let reg = Registry::new_shared();
        let c = reg.counter("w.commits");
        let h = reg.histogram("w.lat");
        c.add(5);
        h.record(100);

        let mut sampler = Sampler::new(reg.clone()); // baseline: 5 commits already in
        c.add(10);
        h.record(200);
        h.record(200);
        sampler.tick(1_000);
        c.add(3);
        sampler.tick(2_000);

        let series = sampler.into_series();
        assert_eq!(series.len(), 2);
        assert_eq!(series.points[0].counters.get("w.commits"), Some(&10));
        assert_eq!(series.points[0].histograms.get("w.lat").unwrap().count, 2);
        assert_eq!(series.points[1].counters.get("w.commits"), Some(&3));
        // No histogram activity in interval 2 -> omitted.
        assert!(series.points[1].histograms.is_empty());
    }

    #[test]
    fn interval_quantiles_reflect_only_the_interval() {
        let reg = Registry::new_shared();
        let h = reg.histogram("lat");
        for _ in 0..1000 {
            h.record(1_000_000); // slow history
        }
        let mut sampler = Sampler::new(reg.clone());
        for _ in 0..100 {
            h.record(10); // fast interval
        }
        sampler.tick(1);
        let p = &sampler.series().points[0];
        let ih = p.histograms.get("lat").unwrap();
        assert_eq!(ih.count, 100);
        // Cumulative p50 would be ~1ms; the interval's is in [8, 16).
        assert!(ih.p50 < 100, "p50={}", ih.p50);
    }

    #[test]
    fn json_shape() {
        let reg = Registry::new_shared();
        reg.counter("c").add(1);
        reg.gauge("g").set(-4);
        let mut sampler = Sampler::new(reg.clone());
        reg.counter("c").add(2);
        sampler.tick(1_000_000);
        let j = sampler.into_series().to_json();
        assert!(j.starts_with("{\"points\": ["));
        assert!(j.contains("\"t_ns\": 1000000"));
        assert!(j.contains("\"c\": 2"));
        assert!(j.contains("\"g\": -4"));
    }

    #[test]
    fn background_sampler_collects_and_stops() {
        let reg = Registry::new_shared();
        let c = reg.counter("bg.events");
        let handle = SamplerHandle::spawn(reg.clone(), Duration::from_millis(5));
        for _ in 0..10 {
            c.add(1);
            std::thread::sleep(Duration::from_millis(2));
        }
        let series = handle.stop();
        assert!(!series.is_empty());
        let total: u64 = series.points.iter().filter_map(|p| p.counters.get("bg.events")).sum();
        assert_eq!(total, 10);
    }
}
