//! The flight recorder: sharded, bounded, lock-free rings of fixed-size
//! trace events.
//!
//! # Design
//!
//! Each shard is a power-of-two ring of six-word slots guarded by a
//! per-slot sequence header (a seqlock). Writers claim a ticket with
//! one `fetch_add` on the shard's claim counter, then write:
//!
//! ```text
//! header <- 2*ticket + 1   (odd: write in progress)
//! meta, start, dur, txn, arg
//! header <- 2*ticket + 2   (even: slot complete)
//! ```
//!
//! Readers accept a slot only if the header reads the *same even value*
//! before and after reading the payload. All slot accesses are `SeqCst`
//! atomics: the single total order makes the seqlock argument exact —
//! if both header loads return the same even value, no writer's header
//! store lies between them, and a writer's payload stores are fenced
//! between its two header stores, so the payload cannot be torn. This
//! costs a handful of fenced stores per event, which is noise against
//! the microsecond-scale operations being traced, and it keeps the
//! crate `#![forbid(unsafe_code)]`.
//!
//! # Memory bound and drop accounting
//!
//! Rings are allocated lazily on the first `set_enabled(true)` —
//! engines that never trace (e.g. the dozens of throwaway recovery
//! engines the crash matrix builds) pay only the struct header. Once
//! allocated, memory is fixed: `shards * capacity * 48` bytes plus the
//! slow ring. Overwritten events are *dropped by construction*; the
//! exact count is `claims - capacity` per shard (claims only grow), so
//! [`FlightRecorder::dropped`] is sound — it can never under-report.

use std::sync::atomic::{AtomicBool, AtomicU16, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::span::{EventKind, SpanGuard, SpanName, TraceEvent};

/// Words per ring slot: header, meta, start_ns, dur_ns, txn, arg.
const WORDS: usize = 6;

/// Sizing and slow-op policy of a recorder.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Ring shards; writers pick `tid % shards`.
    pub shards: usize,
    /// Events retained per shard (the flight-recorder window).
    pub capacity: usize,
    /// Events retained in the slow-op ring.
    pub slow_capacity: usize,
    /// Spans at least this long (ns) are copied into the slow ring;
    /// 0 disables slow capture.
    pub slow_threshold_ns: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        // 16 shards x 1024 events x 48 B = 768 KiB main window, plus a
        // 512-event slow ring: bounded and small next to the buffer pool.
        TraceConfig { shards: 16, capacity: 1024, slow_capacity: 512, slow_threshold_ns: 0 }
    }
}

struct Shard {
    claims: AtomicU64,
    slots: Box<[AtomicU64]>,
}

impl Shard {
    fn new(capacity: usize) -> Shard {
        Shard {
            claims: AtomicU64::new(0),
            slots: (0..capacity * WORDS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn capacity(&self) -> usize {
        self.slots.len() / WORDS
    }

    fn write(&self, meta: u64, start_ns: u64, dur_ns: u64, txn: u64, arg: u64) {
        let cap = self.capacity();
        let ticket = self.claims.fetch_add(1, Ordering::SeqCst);
        let base = (ticket as usize % cap) * WORDS;
        self.slots[base].store(ticket * 2 + 1, Ordering::SeqCst);
        self.slots[base + 1].store(meta, Ordering::SeqCst);
        self.slots[base + 2].store(start_ns, Ordering::SeqCst);
        self.slots[base + 3].store(dur_ns, Ordering::SeqCst);
        self.slots[base + 4].store(txn, Ordering::SeqCst);
        self.slots[base + 5].store(arg, Ordering::SeqCst);
        self.slots[base].store(ticket * 2 + 2, Ordering::SeqCst);
    }

    fn read_into(&self, out: &mut Vec<TraceEvent>) {
        let cap = self.capacity();
        for slot in 0..cap {
            let base = slot * WORDS;
            let h1 = self.slots[base].load(Ordering::SeqCst);
            if h1 == 0 || h1 % 2 == 1 {
                continue; // never written, or write in progress
            }
            let meta = self.slots[base + 1].load(Ordering::SeqCst);
            let start_ns = self.slots[base + 2].load(Ordering::SeqCst);
            let dur_ns = self.slots[base + 3].load(Ordering::SeqCst);
            let txn = self.slots[base + 4].load(Ordering::SeqCst);
            let arg = self.slots[base + 5].load(Ordering::SeqCst);
            let h2 = self.slots[base].load(Ordering::SeqCst);
            if h1 != h2 {
                continue; // torn: a writer landed mid-read
            }
            let Some(event) = decode(h1 / 2 - 1, meta, start_ns, dur_ns, txn, arg) else {
                continue;
            };
            out.push(event);
        }
    }

    fn clear(&self) {
        for slot in 0..self.capacity() {
            self.slots[slot * WORDS].store(0, Ordering::SeqCst);
        }
        self.claims.store(0, Ordering::SeqCst);
    }
}

struct Rings {
    shards: Vec<Shard>,
    slow: Shard,
}

fn pack_meta(kind: EventKind, name: SpanName, tid: u16, depth: u8) -> u64 {
    let kind_bit: u64 = match kind {
        EventKind::Span => 0,
        EventKind::Instant => 1,
    };
    (name as u16 as u64) | ((tid as u64) << 16) | ((depth as u64) << 32) | (kind_bit << 40)
}

fn decode(
    seq: u64,
    meta: u64,
    start_ns: u64,
    dur_ns: u64,
    txn: u64,
    arg: u64,
) -> Option<TraceEvent> {
    let name = SpanName::from_u16((meta & 0xFFFF) as u16)?;
    let tid = ((meta >> 16) & 0xFFFF) as u16;
    let depth = ((meta >> 32) & 0xFF) as u8;
    let kind = if (meta >> 40) & 1 == 1 { EventKind::Instant } else { EventKind::Span };
    Some(TraceEvent { seq, kind, name, tid, depth, start_ns, dur_ns, txn, arg })
}

// Process-wide small thread ids: stable for a thread's lifetime, shared
// by every recorder (the id is a label, not an index into anything
// recorder-specific).
static NEXT_TID: AtomicU16 = AtomicU16::new(1);

thread_local! {
    static TID: std::cell::Cell<u16> = const { std::cell::Cell::new(0) };
    // Per-thread span nesting depth. Global across recorders: a thread
    // inside spans of two engines at once (which does not happen on the
    // hot paths) would merely report a deeper depth.
    static DEPTH: std::cell::Cell<u8> = const { std::cell::Cell::new(0) };
}

fn current_tid() -> u16 {
    TID.with(|t| {
        let v = t.get();
        if v != 0 {
            v
        } else {
            let v = NEXT_TID.fetch_add(1, Ordering::Relaxed).max(1);
            t.set(v);
            v
        }
    })
}

/// The always-available tracing sink of one registry. Cheap when
/// disabled: `span()`/`instant()` are one relaxed load.
pub struct FlightRecorder {
    enabled: AtomicBool,
    epoch: Instant,
    config: TraceConfig,
    slow_threshold_ns: AtomicU64,
    rings: OnceLock<Rings>,
    spans_opened: AtomicU64,
    spans_closed: AtomicU64,
}

impl FlightRecorder {
    pub fn new(config: TraceConfig) -> Self {
        FlightRecorder {
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            slow_threshold_ns: AtomicU64::new(config.slow_threshold_ns),
            config,
            rings: OnceLock::new(),
            spans_opened: AtomicU64::new(0),
            spans_closed: AtomicU64::new(0),
        }
    }

    /// Turns recording on or off. The first enable allocates the rings;
    /// disable keeps their contents (the flight-recorder window
    /// survives for a post-hoc dump).
    pub fn set_enabled(&self, on: bool) {
        if on {
            self.rings_or_init();
        }
        self.enabled.store(on, Ordering::SeqCst);
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Sets the slow-span promotion threshold (ns); 0 disables.
    pub fn set_slow_threshold_ns(&self, ns: u64) {
        self.slow_threshold_ns.store(ns, Ordering::Relaxed);
    }

    pub fn slow_threshold_ns(&self) -> u64 {
        self.slow_threshold_ns.load(Ordering::Relaxed)
    }

    fn rings_or_init(&self) -> &Rings {
        self.rings.get_or_init(|| Rings {
            shards: (0..self.config.shards.max(1))
                .map(|_| Shard::new(self.config.capacity.max(1)))
                .collect(),
            slow: Shard::new(self.config.slow_capacity.max(1)),
        })
    }

    /// Opens a span; the returned guard records on drop. Inert (and
    /// nearly free) while disabled.
    #[inline]
    pub fn span(&self, name: SpanName) -> SpanGuard<'_> {
        if !self.is_enabled() {
            return SpanGuard::inert(name);
        }
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v.saturating_add(1));
            v
        });
        self.spans_opened.fetch_add(1, Ordering::Relaxed);
        SpanGuard::live(self, name, depth)
    }

    /// Records a point event (no duration).
    pub fn instant(&self, name: SpanName, txn: u64, arg: u64) {
        if !self.is_enabled() {
            return;
        }
        let Some(rings) = self.rings.get() else { return };
        let tid = current_tid();
        let start_ns = ns_since(self.epoch, Instant::now());
        let meta = pack_meta(EventKind::Instant, name, tid, DEPTH.with(|d| d.get()));
        let shard = &rings.shards[tid as usize % rings.shards.len()];
        shard.write(meta, start_ns, 0, txn, arg);
    }

    /// Called by [`SpanGuard::drop`]; not public API.
    pub(crate) fn close_span(&self, name: SpanName, depth: u8, start: Instant, txn: u64, arg: u64) {
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        self.spans_closed.fetch_add(1, Ordering::Relaxed);
        let Some(rings) = self.rings.get() else { return };
        let now = Instant::now();
        let start_ns = ns_since(self.epoch, start);
        let dur_ns = ns_since(start, now);
        let tid = current_tid();
        let meta = pack_meta(EventKind::Span, name, tid, depth);
        let shard = &rings.shards[tid as usize % rings.shards.len()];
        shard.write(meta, start_ns, dur_ns, txn, arg);
        let threshold = self.slow_threshold_ns.load(Ordering::Relaxed);
        if threshold > 0 && dur_ns >= threshold {
            rings.slow.write(meta, start_ns, dur_ns, txn, arg);
        }
    }

    /// Reads the retained window of every shard: a consistent-per-slot,
    /// globally unordered sample, returned sorted by start time. Safe
    /// to call while writers run (torn slots are skipped, not blocked).
    pub fn capture(&self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        if let Some(rings) = self.rings.get() {
            for shard in &rings.shards {
                shard.read_into(&mut out);
            }
        }
        out.sort_by_key(|e| (e.start_ns, e.tid, e.seq));
        out
    }

    /// The retained slow-op ring, sorted by start time.
    pub fn capture_slow(&self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        if let Some(rings) = self.rings.get() {
            rings.slow.read_into(&mut out);
        }
        out.sort_by_key(|e| (e.start_ns, e.tid, e.seq));
        out
    }

    /// Events evicted from the main window (exact; never
    /// under-reports).
    pub fn dropped(&self) -> u64 {
        self.rings
            .get()
            .map(|r| {
                r.shards
                    .iter()
                    .map(|s| s.claims.load(Ordering::SeqCst).saturating_sub(s.capacity() as u64))
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Total events ever recorded into the main window (claims across
    /// shards). Zero while tracing has never been enabled.
    pub fn total_recorded(&self) -> u64 {
        self.rings
            .get()
            .map(|r| r.shards.iter().map(|s| s.claims.load(Ordering::SeqCst)).sum())
            .unwrap_or(0)
    }

    /// Spans opened minus spans closed: 0 when quiescent. A sustained
    /// nonzero value on an idle system means a guard leak.
    pub fn open_spans(&self) -> u64 {
        self.spans_opened
            .load(Ordering::Relaxed)
            .saturating_sub(self.spans_closed.load(Ordering::Relaxed))
    }

    pub fn spans_opened(&self) -> u64 {
        self.spans_opened.load(Ordering::Relaxed)
    }

    /// Fixed memory of the allocated rings in bytes (0 until first
    /// enable).
    pub fn memory_bytes(&self) -> usize {
        self.rings
            .get()
            .map(|r| {
                (r.shards.iter().map(|s| s.slots.len()).sum::<usize>() + r.slow.slots.len()) * 8
            })
            .unwrap_or(0)
    }

    /// Empties the window and zeroes the drop accounting (benchmark
    /// warmup boundary). Not linearizable against concurrent writers;
    /// call it on quiescent boundaries.
    pub fn clear(&self) {
        if let Some(rings) = self.rings.get() {
            for shard in &rings.shards {
                shard.clear();
            }
            rings.slow.clear();
        }
        self.spans_opened.store(0, Ordering::Relaxed);
        self.spans_closed.store(0, Ordering::Relaxed);
    }

    /// Nanoseconds elapsed since this recorder's epoch.
    pub fn now_ns(&self) -> u64 {
        ns_since(self.epoch, Instant::now())
    }
}

fn ns_since(epoch: Instant, t: Instant) -> u64 {
    u64::try_from(t.saturating_duration_since(epoch).as_nanos()).unwrap_or(u64::MAX)
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("enabled", &self.is_enabled())
            .field("recorded", &self.total_recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FlightRecorder {
        FlightRecorder::new(TraceConfig {
            shards: 2,
            capacity: 8,
            slow_capacity: 4,
            slow_threshold_ns: 0,
        })
    }

    #[test]
    fn disabled_recorder_is_inert_and_empty() {
        let rec = tiny();
        {
            let _g = rec.span(SpanName::TxnCommit);
        }
        rec.instant(SpanName::ChaosCrash, 1, 2);
        assert_eq!(rec.total_recorded(), 0);
        assert_eq!(rec.memory_bytes(), 0);
        assert!(rec.capture().is_empty());
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn records_and_captures_span_fields() {
        let rec = tiny();
        rec.set_enabled(true);
        {
            let _g = rec.span(SpanName::WalForce).txn(42).arg(7);
        }
        let events = rec.capture();
        assert_eq!(events.len(), 1);
        let e = events[0];
        assert_eq!(e.name, SpanName::WalForce);
        assert_eq!(e.kind, EventKind::Span);
        assert_eq!(e.txn, 42);
        assert_eq!(e.arg, 7);
        assert_eq!(rec.open_spans(), 0);
    }

    #[test]
    fn nesting_depth_is_recorded() {
        let rec = tiny();
        rec.set_enabled(true);
        {
            let _outer = rec.span(SpanName::TxnCommit);
            {
                let _inner = rec.span(SpanName::WalAppend);
            }
        }
        let events = rec.capture();
        let outer = events.iter().find(|e| e.name == SpanName::TxnCommit).unwrap();
        let inner = events.iter().find(|e| e.name == SpanName::WalAppend).unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert!(inner.start_ns >= outer.start_ns);
    }

    #[test]
    fn window_is_bounded_and_drops_are_counted() {
        let rec = tiny(); // 2 shards x 8 slots
        rec.set_enabled(true);
        for i in 0..100u64 {
            rec.instant(SpanName::ChaosCrash, i, 0);
        }
        // This thread maps to one shard: 100 claims, 8 retained.
        assert_eq!(rec.total_recorded(), 100);
        assert_eq!(rec.dropped(), 92);
        let events = rec.capture();
        assert_eq!(events.len(), 8);
        // The window holds the *latest* events.
        assert!(events.iter().all(|e| e.txn >= 92));
    }

    #[test]
    fn slow_ring_captures_above_threshold() {
        let rec = tiny();
        rec.set_enabled(true);
        rec.set_slow_threshold_ns(1); // everything with nonzero duration
        {
            let _g = rec.span(SpanName::CkptRun);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let slow = rec.capture_slow();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].name, SpanName::CkptRun);
        assert!(slow[0].dur_ns >= 1);
    }

    #[test]
    fn clear_resets_window_and_accounting() {
        let rec = tiny();
        rec.set_enabled(true);
        rec.instant(SpanName::ChaosCrash, 0, 0);
        rec.clear();
        assert!(rec.capture().is_empty());
        assert_eq!(rec.total_recorded(), 0);
        assert_eq!(rec.dropped(), 0);
    }
}
