//! # sias-obs — unified metrics for the SIAS stack
//!
//! One registry per engine instance (plus an opt-in process-global one)
//! holding named counters, gauges, and log-bucketed histograms. Names
//! follow `<crate>.<component>.<name>` — e.g. `storage.buffer.hits`,
//! `core.engine.update`, `txn.manager.aborts_write_conflict` — and the
//! SIAS engine and the SI baseline register the *same* names so their
//! snapshots are directly comparable.
//!
//! Hot paths resolve their handles once (an `Arc` per metric) and then
//! record with relaxed atomics: no locks, no allocation, no formatting.
//! [`Registry::snapshot`] captures everything into a [`MetricsSnapshot`]
//! that serializes to JSON ([`MetricsSnapshot::to_json`]) and Prometheus
//! text ([`MetricsSnapshot::to_prometheus`]).
//!
//! ```
//! use sias_obs::Registry;
//!
//! let reg = Registry::new();
//! let hits = reg.counter("storage.buffer.hits");
//! hits.inc();
//! let lat = reg.histogram("core.engine.update");
//! sias_obs::time!(lat, { /* instrumented work */ });
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("storage.buffer.hits"), Some(1));
//! assert_eq!(snap.histogram("core.engine.update").unwrap().count, 1);
//! ```

#![forbid(unsafe_code)]

mod metric;
mod snapshot;

pub use metric::{
    bucket_hi, bucket_index, bucket_lo, Counter, Gauge, Histogram, HistogramSummary,
    HISTOGRAM_BUCKETS,
};
pub use snapshot::{MetricSample, MetricsSnapshot, SampleValue};

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock, RwLock};

#[derive(Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics. Lookups take a read lock; recording
/// through the returned handles is lock-free. Engines own one registry
/// each (shared via `Arc` with their storage stack), so two engines in
/// one process never mix their numbers.
#[derive(Default)]
pub struct Registry {
    metrics: RwLock<BTreeMap<String, Metric>>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// A new registry behind an `Arc`, ready to share across subsystems.
    pub fn new_shared() -> Arc<Self> {
        Arc::new(Registry::new())
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use. Panics if `name` is already registered as a different kind —
    /// that is a programming error, not a runtime condition.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(m) = self.lookup(name) {
            match m {
                Metric::Counter(c) => return c,
                _ => panic!("metric {name:?} is not a counter"),
            }
        }
        let mut map = self.metrics.write().unwrap_or_else(|e| e.into_inner());
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} is not a counter"),
        }
    }

    /// Returns the gauge registered under `name`, creating it on first
    /// use. Panics if `name` is registered as a different kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(m) = self.lookup(name) {
            match m {
                Metric::Gauge(g) => return g,
                _ => panic!("metric {name:?} is not a gauge"),
            }
        }
        let mut map = self.metrics.write().unwrap_or_else(|e| e.into_inner());
        match map.entry(name.to_string()).or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} is not a gauge"),
        }
    }

    /// Returns the histogram registered under `name`, creating it on
    /// first use. Panics if `name` is registered as a different kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(m) = self.lookup(name) {
            match m {
                Metric::Histogram(h) => return h,
                _ => panic!("metric {name:?} is not a histogram"),
            }
        }
        let mut map = self.metrics.write().unwrap_or_else(|e| e.into_inner());
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} is not a histogram"),
        }
    }

    fn lookup(&self, name: &str) -> Option<Metric> {
        self.metrics.read().unwrap_or_else(|e| e.into_inner()).get(name).cloned()
    }

    /// Captures every registered metric. Concurrent recorders may land
    /// increments during the capture; each individual metric is read
    /// atomically, so committed increments are never lost or torn.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.metrics.read().unwrap_or_else(|e| e.into_inner());
        let samples = map
            .iter()
            .map(|(name, m)| MetricSample {
                name: name.clone(),
                value: match m {
                    Metric::Counter(c) => SampleValue::Counter(c.get()),
                    Metric::Gauge(g) => SampleValue::Gauge(g.get()),
                    Metric::Histogram(h) => SampleValue::Histogram(h.summary()),
                },
            })
            .collect();
        drop(map);
        MetricsSnapshot::from_samples(samples)
    }

    /// Zeroes every registered metric (benchmark warmup boundary). The
    /// metrics stay registered and existing handles stay valid.
    pub fn reset_all(&self) {
        let map = self.metrics.read().unwrap_or_else(|e| e.into_inner());
        for m in map.values() {
            match m {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").field("metrics", &self.len()).finish()
    }
}

/// The process-global registry, for call sites with no engine handy
/// (`obs::time!("name", { .. })`). Engine metrics live in per-engine
/// registries instead.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Times a block into a histogram and evaluates to the block's value.
///
/// Three forms:
///
/// ```
/// # use sias_obs::Registry;
/// # let registry = Registry::new();
/// // 1. Global registry by name (convenient, one lookup per use):
/// let x = sias_obs::time!("engine.update", { 2 + 2 });
///
/// // 2. Explicit registry + name:
/// let y = sias_obs::time!(registry, "core.engine.update", { x + 1 });
///
/// // 3. Pre-resolved histogram handle (hot paths, zero lookups):
/// let h = registry.histogram("core.engine.scan");
/// let z = sias_obs::time!(h, { y + 1 });
/// assert_eq!(z, 6);
/// ```
#[macro_export]
macro_rules! time {
    ($name:literal, $body:expr) => {{
        let __obs_start = ::std::time::Instant::now();
        let __obs_out = $body;
        $crate::global().histogram($name).record_duration(__obs_start.elapsed());
        __obs_out
    }};
    ($registry:expr, $name:expr, $body:expr) => {{
        let __obs_start = ::std::time::Instant::now();
        let __obs_out = $body;
        ($registry).histogram($name).record_duration(__obs_start.elapsed());
        __obs_out
    }};
    ($hist:expr, $body:expr) => {{
        let __obs_start = ::std::time::Instant::now();
        let __obs_out = $body;
        ($hist).record_duration(__obs_start.elapsed());
        __obs_out
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_instance() {
        let reg = Registry::new();
        let a = reg.counter("x.y.z");
        let b = reg.counter("x.y.z");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("x.y.z").get(), 3);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    #[should_panic(expected = "is not a gauge")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("a.b.c");
        reg.gauge("a.b.c");
    }

    #[test]
    fn snapshot_covers_all_kinds() {
        let reg = Registry::new();
        reg.counter("c").add(7);
        reg.gauge("g").set(-2);
        reg.histogram("h").record(31);
        let s = reg.snapshot();
        assert_eq!(s.len(), 3);
        assert_eq!(s.counter("c"), Some(7));
        assert_eq!(s.gauge("g"), Some(-2));
        let h = s.histogram("h").unwrap();
        assert_eq!((h.count, h.sum, h.max), (1, 31, 31));
    }

    #[test]
    fn reset_all_keeps_handles_valid() {
        let reg = Registry::new();
        let c = reg.counter("c");
        c.add(9);
        reg.reset_all();
        assert_eq!(c.get(), 0);
        c.inc();
        assert_eq!(reg.snapshot().counter("c"), Some(1));
    }

    #[test]
    fn time_macro_forms() {
        let reg = Registry::new();
        let out = time!(reg, "m.n.o", { 40 + 2 });
        assert_eq!(out, 42);
        assert_eq!(reg.snapshot().histogram("m.n.o").unwrap().count, 1);

        let h = reg.histogram("m.n.handle");
        let out = time!(h, { "done" });
        assert_eq!(out, "done");
        assert_eq!(h.count(), 1);

        let before = global().snapshot().histogram("obs.test.global").map(|h| h.count).unwrap_or(0);
        time!("obs.test.global", {});
        let after = global().snapshot().histogram("obs.test.global").unwrap().count;
        assert_eq!(after, before + 1);
    }
}
