//! # sias-obs — unified metrics and tracing for the SIAS stack
//!
//! One registry per engine instance (plus an opt-in process-global one)
//! holding named counters, gauges, and log-bucketed histograms. Names
//! follow `<crate>.<component>.<name>` — e.g. `storage.buffer.hits`,
//! `core.engine.update`, `txn.manager.aborts_write_conflict` — and the
//! SIAS engine and the SI baseline register the *same* names so their
//! snapshots are directly comparable.
//!
//! Hot paths resolve their handles once (an `Arc` per metric) and then
//! record with relaxed atomics: no locks, no allocation, no formatting.
//! [`Registry::snapshot`] captures everything into a [`MetricsSnapshot`]
//! that serializes to JSON ([`MetricsSnapshot::to_json`]) and Prometheus
//! text ([`MetricsSnapshot::to_prometheus`]).
//!
//! Each registry also owns a [`FlightRecorder`] ([`Registry::tracer`]):
//! a bounded, lock-free ring of structured span events covering the
//! transaction lifecycle (`txn.begin` → `engine.*` → `wal.append` →
//! `wal.force` → `txn.commit`). Disabled it costs one relaxed load per
//! span; enabled it keeps the last N events per thread shard for
//! post-hoc dumps ([`export::to_jsonl`], [`export::to_chrome_trace`]).
//! The [`sampler`] module turns periodic snapshots into time series.
//!
//! ```
//! use sias_obs::Registry;
//!
//! let reg = Registry::new();
//! let hits = reg.counter("storage.buffer.hits");
//! hits.inc();
//! let lat = reg.histogram("core.engine.update");
//! sias_obs::time!(lat, { /* instrumented work */ });
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("storage.buffer.hits"), Some(1));
//! assert_eq!(snap.histogram("core.engine.update").unwrap().count, 1);
//! ```
//!
//! Tracing:
//!
//! ```
//! use sias_obs::{Registry, SpanName};
//!
//! let reg = Registry::new();
//! reg.tracer().set_enabled(true);
//! {
//!     let _span = reg.tracer().span(SpanName::TxnCommit).txn(7);
//!     // ... commit critical path ...
//! }
//! assert_eq!(reg.tracer().capture().len(), 1);
//! ```

#![forbid(unsafe_code)]

mod metric;
mod snapshot;

pub mod export;
mod recorder;
pub mod sampler;
mod span;

pub use metric::{
    bucket_hi, bucket_index, bucket_lo, quantile_from_counts, Counter, Gauge, Histogram,
    HistogramSummary, HISTOGRAM_BUCKETS,
};
pub use recorder::{FlightRecorder, TraceConfig};
pub use sampler::{IntervalHistogram, Sampler, SamplerHandle, SeriesPoint, TimeSeries};
pub use snapshot::{HistogramSample, MetricSample, MetricsSnapshot, SampleValue};
pub use span::{EventKind, SpanGuard, SpanName, TraceEvent, SPAN_NAME_COUNT};

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock, RwLock, RwLockWriteGuard};

#[derive(Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

type MetricMap = BTreeMap<Arc<str>, Metric>;

fn intern_counter(map: &mut MetricMap, name: &str) -> Arc<Counter> {
    // Look up by &str first: the key is only allocated on genuine first
    // registration, never on the re-resolve path.
    if let Some(m) = map.get(name) {
        match m {
            Metric::Counter(c) => return c.clone(),
            _ => panic!("metric {name:?} is not a counter"),
        }
    }
    let c = Arc::new(Counter::new());
    map.insert(Arc::from(name), Metric::Counter(c.clone()));
    c
}

fn intern_gauge(map: &mut MetricMap, name: &str) -> Arc<Gauge> {
    if let Some(m) = map.get(name) {
        match m {
            Metric::Gauge(g) => return g.clone(),
            _ => panic!("metric {name:?} is not a gauge"),
        }
    }
    let g = Arc::new(Gauge::new());
    map.insert(Arc::from(name), Metric::Gauge(g.clone()));
    g
}

fn intern_histogram(map: &mut MetricMap, name: &str) -> Arc<Histogram> {
    if let Some(m) = map.get(name) {
        match m {
            Metric::Histogram(h) => return h.clone(),
            _ => panic!("metric {name:?} is not a histogram"),
        }
    }
    let h = Arc::new(Histogram::new());
    map.insert(Arc::from(name), Metric::Histogram(h.clone()));
    h
}

/// A named collection of metrics. Lookups take a read lock; recording
/// through the returned handles is lock-free. Engines own one registry
/// each (shared via `Arc` with their storage stack), so two engines in
/// one process never mix their numbers.
///
/// Names are interned as `Arc<str>`: re-resolving an existing metric
/// never allocates, and [`Registry::handles`] resolves a whole batch
/// under one lock acquisition (engine init registers dozens of metrics).
#[derive(Default)]
pub struct Registry {
    metrics: RwLock<MetricMap>,
    tracer: OnceLock<Arc<FlightRecorder>>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// A new registry behind an `Arc`, ready to share across subsystems.
    pub fn new_shared() -> Arc<Self> {
        Arc::new(Registry::new())
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use. Panics if `name` is already registered as a different kind —
    /// that is a programming error, not a runtime condition.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(Metric::Counter(c)) = self.lookup_checked(name, "counter") {
            return c;
        }
        let mut map = self.metrics.write().unwrap_or_else(|e| e.into_inner());
        intern_counter(&mut map, name)
    }

    /// Returns the gauge registered under `name`, creating it on first
    /// use. Panics if `name` is registered as a different kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(Metric::Gauge(g)) = self.lookup_checked(name, "gauge") {
            return g;
        }
        let mut map = self.metrics.write().unwrap_or_else(|e| e.into_inner());
        intern_gauge(&mut map, name)
    }

    /// Returns the histogram registered under `name`, creating it on
    /// first use. Panics if `name` is registered as a different kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(Metric::Histogram(h)) = self.lookup_checked(name, "histogram") {
            return h;
        }
        let mut map = self.metrics.write().unwrap_or_else(|e| e.into_inner());
        intern_histogram(&mut map, name)
    }

    /// Fast-path lookup under the read lock; panics on a kind mismatch
    /// so the caller only sees its own variant or `None`.
    fn lookup_checked(&self, name: &str, want: &str) -> Option<Metric> {
        let m = self.metrics.read().unwrap_or_else(|e| e.into_inner()).get(name).cloned()?;
        let ok = matches!(
            (&m, want),
            (Metric::Counter(_), "counter")
                | (Metric::Gauge(_), "gauge")
                | (Metric::Histogram(_), "histogram")
        );
        if !ok {
            panic!("metric {name:?} is not a {want}");
        }
        Some(m)
    }

    /// Resolves many handles under a single lock acquisition. Engine
    /// init registers dozens of metrics; doing it one `counter()` call
    /// at a time takes and releases the write lock per name.
    ///
    /// ```
    /// # let reg = sias_obs::Registry::new();
    /// let mut h = reg.handles();
    /// let hits = h.counter("storage.buffer.hits");
    /// let lat = h.histogram("core.engine.get");
    /// drop(h); // releases the registry lock
    /// ```
    pub fn handles(&self) -> BulkResolver<'_> {
        BulkResolver { map: self.metrics.write().unwrap_or_else(|e| e.into_inner()) }
    }

    /// This registry's flight recorder (created on first call, disabled
    /// until [`FlightRecorder::set_enabled`]; ring memory is not
    /// allocated until first enable).
    pub fn tracer(&self) -> &Arc<FlightRecorder> {
        self.tracer.get_or_init(|| Arc::new(FlightRecorder::new(TraceConfig::default())))
    }

    /// Like [`Registry::tracer`] but with an explicit configuration.
    /// The first initializer wins; later calls return the existing
    /// recorder regardless of `config`.
    pub fn tracer_with_config(&self, config: TraceConfig) -> &Arc<FlightRecorder> {
        self.tracer.get_or_init(|| Arc::new(FlightRecorder::new(config)))
    }

    /// Captures every registered metric. Concurrent recorders may land
    /// increments during the capture; each individual metric is read
    /// atomically, so committed increments are never lost or torn.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.metrics.read().unwrap_or_else(|e| e.into_inner());
        let samples = map
            .iter()
            .map(|(name, m)| MetricSample {
                name: name.to_string(),
                value: match m {
                    Metric::Counter(c) => SampleValue::Counter(c.get()),
                    Metric::Gauge(g) => SampleValue::Gauge(g.get()),
                    Metric::Histogram(h) => SampleValue::Histogram(h.sample()),
                },
            })
            .collect();
        drop(map);
        MetricsSnapshot::from_samples(samples)
    }

    /// Zeroes every registered metric (benchmark warmup boundary). The
    /// metrics stay registered and existing handles stay valid.
    pub fn reset_all(&self) {
        let map = self.metrics.read().unwrap_or_else(|e| e.into_inner());
        for m in map.values() {
            match m {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").field("metrics", &self.len()).finish()
    }
}

/// Batch handle resolver holding the registry's write lock; see
/// [`Registry::handles`]. Drop it as soon as the batch is resolved.
pub struct BulkResolver<'a> {
    map: RwLockWriteGuard<'a, MetricMap>,
}

impl BulkResolver<'_> {
    /// As [`Registry::counter`], without re-locking.
    pub fn counter(&mut self, name: &str) -> Arc<Counter> {
        intern_counter(&mut self.map, name)
    }

    /// As [`Registry::gauge`], without re-locking.
    pub fn gauge(&mut self, name: &str) -> Arc<Gauge> {
        intern_gauge(&mut self.map, name)
    }

    /// As [`Registry::histogram`], without re-locking.
    pub fn histogram(&mut self, name: &str) -> Arc<Histogram> {
        intern_histogram(&mut self.map, name)
    }
}

/// The process-global registry, for call sites with no engine handy
/// (`obs::time!("name", { .. })`). Engine metrics live in per-engine
/// registries instead.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Times a block into a histogram and evaluates to the block's value.
///
/// Three forms:
///
/// ```
/// # use sias_obs::Registry;
/// # let registry = Registry::new();
/// // 1. Global registry by name (convenient, one lookup per use):
/// let x = sias_obs::time!("engine.update", { 2 + 2 });
///
/// // 2. Explicit registry + name:
/// let y = sias_obs::time!(registry, "core.engine.update", { x + 1 });
///
/// // 3. Pre-resolved histogram handle (hot paths, zero lookups):
/// let h = registry.histogram("core.engine.scan");
/// let z = sias_obs::time!(h, { y + 1 });
/// assert_eq!(z, 6);
/// ```
#[macro_export]
macro_rules! time {
    ($name:literal, $body:expr) => {{
        let __obs_start = ::std::time::Instant::now();
        let __obs_out = $body;
        $crate::global().histogram($name).record_duration(__obs_start.elapsed());
        __obs_out
    }};
    ($registry:expr, $name:expr, $body:expr) => {{
        let __obs_start = ::std::time::Instant::now();
        let __obs_out = $body;
        ($registry).histogram($name).record_duration(__obs_start.elapsed());
        __obs_out
    }};
    ($hist:expr, $body:expr) => {{
        let __obs_start = ::std::time::Instant::now();
        let __obs_out = $body;
        ($hist).record_duration(__obs_start.elapsed());
        __obs_out
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_instance() {
        let reg = Registry::new();
        let a = reg.counter("x.y.z");
        let b = reg.counter("x.y.z");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("x.y.z").get(), 3);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    #[should_panic(expected = "is not a gauge")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("a.b.c");
        reg.gauge("a.b.c");
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn kind_mismatch_panics_on_fast_path_too() {
        let reg = Registry::new();
        reg.gauge("a.b.c");
        reg.counter("a.b.c"); // hits the read-lock fast path
    }

    #[test]
    fn bulk_resolver_shares_instances_with_single_resolves() {
        let reg = Registry::new();
        let single = reg.counter("c.one");
        {
            let mut h = reg.handles();
            h.counter("c.one").add(2);
            h.gauge("g.one").set(5);
            h.histogram("h.one").record(9);
        }
        assert_eq!(single.get(), 2);
        assert_eq!(reg.len(), 3);
        assert_eq!(reg.gauge("g.one").get(), 5);
        assert_eq!(reg.histogram("h.one").count(), 1);
    }

    #[test]
    #[should_panic(expected = "is not a histogram")]
    fn bulk_resolver_checks_kinds() {
        let reg = Registry::new();
        reg.counter("a");
        reg.handles().histogram("a");
    }

    #[test]
    fn tracer_is_shared_and_lazy() {
        let reg = Registry::new();
        let t1 = Arc::clone(reg.tracer());
        let t2 = Arc::clone(reg.tracer());
        assert!(Arc::ptr_eq(&t1, &t2));
        assert!(!t1.is_enabled());
        assert_eq!(t1.memory_bytes(), 0); // no rings until first enable
    }

    #[test]
    fn snapshot_covers_all_kinds() {
        let reg = Registry::new();
        reg.counter("c").add(7);
        reg.gauge("g").set(-2);
        reg.histogram("h").record(31);
        let s = reg.snapshot();
        assert_eq!(s.len(), 3);
        assert_eq!(s.counter("c"), Some(7));
        assert_eq!(s.gauge("g"), Some(-2));
        let h = s.histogram("h").unwrap();
        assert_eq!((h.count, h.sum, h.max), (1, 31, 31));
    }

    #[test]
    fn reset_all_keeps_handles_valid() {
        let reg = Registry::new();
        let c = reg.counter("c");
        c.add(9);
        reg.reset_all();
        assert_eq!(c.get(), 0);
        c.inc();
        assert_eq!(reg.snapshot().counter("c"), Some(1));
    }

    #[test]
    fn time_macro_forms() {
        let reg = Registry::new();
        let out = time!(reg, "m.n.o", { 40 + 2 });
        assert_eq!(out, 42);
        assert_eq!(reg.snapshot().histogram("m.n.o").unwrap().count, 1);

        let h = reg.histogram("m.n.handle");
        let out = time!(h, { "done" });
        assert_eq!(out, "done");
        assert_eq!(h.count(), 1);

        let before = global().snapshot().histogram("obs.test.global").map(|h| h.count).unwrap_or(0);
        time!("obs.test.global", {});
        let after = global().snapshot().histogram("obs.test.global").unwrap().count;
        assert_eq!(after, before + 1);
    }
}
