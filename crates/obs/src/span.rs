//! Trace event model: interned span names, fixed-size events, and the
//! RAII guard that records a completed span on drop.
//!
//! Events are fixed-size (six `u64` words in the ring, one struct here)
//! so recording never allocates. Span names are a closed enum rather
//! than strings: the SIAS engine and the SI baseline must emit the
//! *same* names for the same logical operations (as with metrics), and
//! an interned `u16` keeps the hot path free of pointer chasing.

use std::time::Instant;

use crate::recorder::FlightRecorder;

/// Interned span/event names. The numeric value is stored in ring
/// slots; [`SpanName::as_str`] is the exported dotted name.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum SpanName {
    /// Transaction lifetime from begin to commit/abort acknowledgement.
    TxnBegin = 0,
    /// Commit critical path (WAL commit record + force + release).
    TxnCommit = 1,
    /// Abort path.
    TxnAbort = 2,
    /// Engine-level operations (one span per `MvccEngine` call).
    EngineInsert = 3,
    EngineUpdate = 4,
    EngineDelete = 5,
    EngineGet = 6,
    EngineScanRange = 7,
    EngineScanAll = 8,
    /// WAL record append (buffered, before force).
    WalAppend = 9,
    /// Group-commit leader flushing a batch; `arg` = commits in batch.
    WalForce = 10,
    /// Follower waiting for a leader's force to cover its LSN.
    WalForceWait = 11,
    /// Checkpoint (fuzzy two-phase); `arg` = pages written.
    CkptRun = 12,
    /// GC vacuum pass; `arg` = versions reclaimed.
    GcVacuum = 13,
    /// Scrubber sweep; `arg` = pages scanned.
    ScrubSweep = 14,
    /// Buffer-pool miss read-through; `arg` = block number.
    PoolMiss = 15,
    /// Maintenance tick (bgwriter/checkpoint dispatch).
    Maintenance = 16,
    /// Instant: chaos harness injected a crash here.
    ChaosCrash = 17,
    /// Instant: the anomaly checker flagged a violation; `txn` = xid.
    AnomalyFlag = 18,
    /// I/O queue batch submit; `arg` = ops in the batch.
    IoSubmit = 19,
    /// I/O queue completion reap; `arg` = completions reaped.
    IoReap = 20,
    /// One incremental GC slice (concurrent with foreground traffic);
    /// `arg` = pages examined.
    GcSlice = 21,
    /// One incremental scrub slice; `arg` = blocks probed.
    ScrubSlice = 22,
    /// WAL-volume-paced fuzzy checkpoint; `arg` = pages written.
    CkptPaced = 23,
    /// One maintenance-scheduler tick; `arg` = throttle tokens spent.
    MaintTick = 24,
    /// Admission gate delaying a begin under pressure; `arg` = waits.
    AdmissionDelay = 25,
    /// Instant: admission gate shed a begin (typed Overloaded error).
    AdmissionShed = 26,
    /// Emergency space reclaim (checkpoint + GC slices past the low
    /// watermark); `arg` = bytes reclaimed.
    EmergencyReclaim = 27,
}

/// Number of distinct span names (table size for exporters).
pub const SPAN_NAME_COUNT: u16 = 28;

impl SpanName {
    /// The exported dotted name, shared by both engines.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanName::TxnBegin => "txn.begin",
            SpanName::TxnCommit => "txn.commit",
            SpanName::TxnAbort => "txn.abort",
            SpanName::EngineInsert => "engine.insert",
            SpanName::EngineUpdate => "engine.update",
            SpanName::EngineDelete => "engine.delete",
            SpanName::EngineGet => "engine.get",
            SpanName::EngineScanRange => "engine.scan_range",
            SpanName::EngineScanAll => "engine.scan_all",
            SpanName::WalAppend => "wal.append",
            SpanName::WalForce => "wal.force",
            SpanName::WalForceWait => "wal.force_wait",
            SpanName::CkptRun => "ckpt.run",
            SpanName::GcVacuum => "gc.vacuum",
            SpanName::ScrubSweep => "scrub.sweep",
            SpanName::PoolMiss => "pool.miss",
            SpanName::Maintenance => "maintenance",
            SpanName::ChaosCrash => "chaos.crash",
            SpanName::AnomalyFlag => "anomaly.flag",
            SpanName::IoSubmit => "io.submit",
            SpanName::IoReap => "io.reap",
            SpanName::GcSlice => "gc.slice",
            SpanName::ScrubSlice => "scrub.slice",
            SpanName::CkptPaced => "ckpt.paced",
            SpanName::MaintTick => "maint.tick",
            SpanName::AdmissionDelay => "admission.delay",
            SpanName::AdmissionShed => "admission.shed",
            SpanName::EmergencyReclaim => "maint.emergency_reclaim",
        }
    }

    /// Decodes the ring encoding; `None` for out-of-range values (a
    /// corrupt or future-format slot).
    pub fn from_u16(v: u16) -> Option<SpanName> {
        use SpanName::*;
        Some(match v {
            0 => TxnBegin,
            1 => TxnCommit,
            2 => TxnAbort,
            3 => EngineInsert,
            4 => EngineUpdate,
            5 => EngineDelete,
            6 => EngineGet,
            7 => EngineScanRange,
            8 => EngineScanAll,
            9 => WalAppend,
            10 => WalForce,
            11 => WalForceWait,
            12 => CkptRun,
            13 => GcVacuum,
            14 => ScrubSweep,
            15 => PoolMiss,
            16 => Maintenance,
            17 => ChaosCrash,
            18 => AnomalyFlag,
            19 => IoSubmit,
            20 => IoReap,
            21 => GcSlice,
            22 => ScrubSlice,
            23 => CkptPaced,
            24 => MaintTick,
            25 => AdmissionDelay,
            26 => AdmissionShed,
            27 => EmergencyReclaim,
            _ => return None,
        })
    }
}

/// What an event records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A completed span: `[start_ns, start_ns + dur_ns)`.
    Span,
    /// A point event (crash injected, anomaly flagged); `dur_ns` = 0.
    Instant,
}

/// One decoded trace event. `start_ns` is relative to the recorder's
/// epoch (its construction instant), so events from one recorder share
/// a timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Ring ticket: a per-shard sequence. Monotone within a shard;
    /// combined with `start_ns` it gives a stable global order.
    pub seq: u64,
    pub kind: EventKind,
    pub name: SpanName,
    /// Recording thread (process-wide small id, not the OS tid).
    pub tid: u16,
    /// Span nesting depth on the recording thread at open time.
    pub depth: u8,
    pub start_ns: u64,
    pub dur_ns: u64,
    /// Transaction id the event belongs to; 0 = none.
    pub txn: u64,
    /// Name-specific payload (batch size, pages, block number…).
    pub arg: u64,
}

/// RAII span: created by [`FlightRecorder::span`], records one
/// [`EventKind::Span`] event when dropped. When tracing is disabled the
/// guard is inert — construction cost is one relaxed atomic load.
pub struct SpanGuard<'r> {
    rec: Option<&'r FlightRecorder>,
    name: SpanName,
    start: Option<Instant>,
    txn: u64,
    arg: u64,
    depth: u8,
}

impl<'r> SpanGuard<'r> {
    pub(crate) fn live(rec: &'r FlightRecorder, name: SpanName, depth: u8) -> Self {
        SpanGuard { rec: Some(rec), name, start: Some(Instant::now()), txn: 0, arg: 0, depth }
    }

    pub(crate) fn inert(name: SpanName) -> Self {
        SpanGuard { rec: None, name, start: None, txn: 0, arg: 0, depth: 0 }
    }

    /// Tags the span with a transaction id.
    #[inline]
    pub fn txn(mut self, xid: u64) -> Self {
        self.txn = xid;
        self
    }

    /// Sets the name-specific payload word.
    #[inline]
    pub fn arg(mut self, arg: u64) -> Self {
        self.arg = arg;
        self
    }

    /// Updates the payload on an existing guard (for values only known
    /// at the end of the span, e.g. batch sizes).
    #[inline]
    pub fn set_arg(&mut self, arg: u64) {
        self.arg = arg;
    }

    /// Tags an existing guard with a transaction id (for ids only known
    /// mid-span, e.g. `begin` allocating the xid it reports).
    #[inline]
    pub fn set_txn(&mut self, xid: u64) {
        self.txn = xid;
    }

    /// Whether this guard will record (tracing was enabled at open).
    pub fn is_recording(&self) -> bool {
        self.rec.is_some()
    }

    /// The span's name (mostly for tests).
    pub fn name(&self) -> SpanName {
        self.name
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let (Some(rec), Some(start)) = (self.rec, self.start) {
            rec.close_span(self.name, self.depth, start, self.txn, self.arg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_round_trip() {
        for v in 0..SPAN_NAME_COUNT {
            let n = SpanName::from_u16(v).expect("in range");
            assert_eq!(n as u16, v);
            assert!(!n.as_str().is_empty());
        }
        assert_eq!(SpanName::from_u16(SPAN_NAME_COUNT), None);
        assert_eq!(SpanName::from_u16(u16::MAX), None);
    }

    #[test]
    fn names_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for v in 0..SPAN_NAME_COUNT {
            assert!(seen.insert(SpanName::from_u16(v).unwrap().as_str()));
        }
    }
}
