//! The three metric primitives: counters, gauges, and log-bucketed
//! histograms. All recording is lock-free (relaxed atomics) and
//! allocation-free, so instrumented hot paths pay a handful of
//! uncontended atomic RMWs at most.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn new() -> Self {
        Counter::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zeroes the counter (benchmark warmup boundaries).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time signed level (active transactions, resident bytes).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn new() -> Self {
        Gauge::default()
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    #[inline]
    pub fn sub(&self, delta: i64) {
        self.value.fetch_sub(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of histogram buckets: bucket 0 holds exact zeros, bucket `i`
/// (1..=64) holds values in `[2^(i-1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Log2-bucketed histogram of `u64` observations (latencies in
/// nanoseconds, sizes in bytes, depths in hops). Fixed bucket layout, so
/// recording is two relaxed `fetch_add`s plus a `fetch_max` — no locks,
/// no allocation, bounded error on quantiles (one power of two).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Maps a value to its bucket: 0 -> 0, v in [2^(i-1), 2^i) -> i.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Lower bound (inclusive) of bucket `i`.
pub fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Upper bound (inclusive) of bucket `i`.
pub fn bucket_hi(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram::default()
    }

    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Release);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a wall-clock duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Acquire)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Quantile estimate from the bucket distribution: finds the bucket
    /// holding the q-th ranked observation and interpolates linearly
    /// inside it. Exact for single-valued buckets (e.g. small depths),
    /// within one power of two otherwise.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts = self.bucket_counts();
        quantile_from_counts(&counts, self.max(), q)
    }

    /// Raw bucket counts (tests, exporters).
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// Full capture for snapshots: summary plus raw buckets.
    pub fn sample(&self) -> crate::snapshot::HistogramSample {
        crate::snapshot::HistogramSample { summary: self.summary(), buckets: self.bucket_counts() }
    }

    /// Condensed view for snapshots.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// Quantile estimate over a raw bucket-count array — the math behind
/// [`Histogram::quantile`], usable on *interval* distributions built by
/// diffing two cumulative snapshots (the time-series sampler does this).
/// `observed_max` caps interpolation in the top occupied bucket; pass
/// `u64::MAX` when unknown.
pub fn quantile_from_counts(counts: &[u64], observed_max: u64, q: f64) -> u64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if seen + c >= rank {
            let lo = bucket_lo(i);
            let hi = bucket_hi(i).min(observed_max);
            if hi <= lo || c == 1 {
                return lo;
            }
            let frac = (rank - seen - 1) as f64 / (c - 1) as f64;
            // Saturate: for the top bucket lo + frac*(hi-lo) can round
            // past u64::MAX.
            return lo.saturating_add((frac * (hi - lo) as f64) as u64);
        }
        seen += c;
    }
    observed_max
}

/// Point-in-time digest of a [`Histogram`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
}

impl HistogramSummary {
    /// Mean observation, zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_basics() {
        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(3);
        assert_eq!(g.get(), 12);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_index(bucket_lo(i)), i);
            assert_eq!(bucket_index(bucket_hi(i)), i);
        }
    }

    #[test]
    fn histogram_summary_and_quantiles() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.max, 100);
        assert!(s.p50 >= 32 && s.p50 <= 64, "p50={}", s.p50);
        assert!(s.p99 >= 64 && s.p99 <= 100, "p99={}", s.p99);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
    }

    #[test]
    fn histogram_zero_and_empty() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.99), 0);
    }
}
