//! Point-in-time view of a registry, serializable to JSON and to
//! Prometheus text exposition. Both serializers are hand-rolled — the
//! formats are small and this crate takes no dependencies.

use crate::metric::HistogramSummary;

/// One exported metric value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SampleValue {
    Counter(u64),
    Gauge(i64),
    Histogram(HistogramSummary),
}

/// A named metric value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricSample {
    pub name: String,
    pub value: SampleValue,
}

/// An ordered, immutable capture of every metric in a registry.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    samples: Vec<MetricSample>,
}

impl MetricsSnapshot {
    /// Builds a snapshot from samples, sorting by metric name.
    pub fn from_samples(mut samples: Vec<MetricSample>) -> Self {
        samples.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot { samples }
    }

    pub fn samples(&self) -> &[MetricSample] {
        &self.samples
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// All metric names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.samples.iter().map(|s| s.name.as_str()).collect()
    }

    /// Looks up a sample by exact name.
    pub fn get(&self, name: &str) -> Option<&SampleValue> {
        self.samples
            .binary_search_by(|s| s.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.samples[i].value)
    }

    /// Counter value by name, `None` if absent or not a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            SampleValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value by name, `None` if absent or not a gauge.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.get(name)? {
            SampleValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Histogram summary by name, `None` if absent or not a histogram.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        match self.get(name)? {
            SampleValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Serializes to a JSON object keyed by metric name:
    ///
    /// ```json
    /// {
    ///   "core.engine.update": {"type": "histogram", "count": 2, "sum": 840,
    ///                          "max": 512, "p50": 328, "p95": 512, "p99": 512},
    ///   "storage.wal.forces": {"type": "counter", "value": 5},
    ///   "txn.manager.active": {"type": "gauge", "value": 0}
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, s) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str("  ");
            push_json_string(&mut out, &s.name);
            out.push_str(": ");
            match &s.value {
                SampleValue::Counter(v) => {
                    out.push_str(&format!("{{\"type\": \"counter\", \"value\": {v}}}"));
                }
                SampleValue::Gauge(v) => {
                    out.push_str(&format!("{{\"type\": \"gauge\", \"value\": {v}}}"));
                }
                SampleValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{{\"type\": \"histogram\", \"count\": {}, \"sum\": {}, \"max\": {}, \
                         \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                        h.count, h.sum, h.max, h.p50, h.p95, h.p99
                    ));
                }
            }
        }
        out.push_str("\n}");
        out
    }

    /// Serializes to Prometheus text exposition. Dots become
    /// underscores; histograms export as summaries with `quantile`
    /// labels plus `_count`, `_sum`, and `_max` series:
    ///
    /// ```text
    /// # TYPE core_engine_update summary
    /// core_engine_update{quantile="0.5"} 328
    /// core_engine_update{quantile="0.95"} 512
    /// core_engine_update{quantile="0.99"} 512
    /// core_engine_update_count 2
    /// core_engine_update_sum 840
    /// core_engine_update_max 512
    /// ```
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            let name: String =
                s.name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect();
            match &s.value {
                SampleValue::Counter(v) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
                }
                SampleValue::Gauge(v) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
                }
                SampleValue::Histogram(h) => {
                    out.push_str(&format!("# TYPE {name} summary\n"));
                    out.push_str(&format!("{name}{{quantile=\"0.5\"}} {}\n", h.p50));
                    out.push_str(&format!("{name}{{quantile=\"0.95\"}} {}\n", h.p95));
                    out.push_str(&format!("{name}{{quantile=\"0.99\"}} {}\n", h.p99));
                    out.push_str(&format!("{name}_count {}\n", h.count));
                    out.push_str(&format!("{name}_sum {}\n", h.sum));
                    out.push_str(&format!("{name}_max {}\n", h.max));
                }
            }
        }
        out
    }
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> MetricsSnapshot {
        MetricsSnapshot::from_samples(vec![
            MetricSample { name: "txn.manager.active".into(), value: SampleValue::Gauge(3) },
            MetricSample { name: "storage.wal.forces".into(), value: SampleValue::Counter(5) },
            MetricSample {
                name: "core.engine.update".into(),
                value: SampleValue::Histogram(HistogramSummary {
                    count: 2,
                    sum: 840,
                    max: 512,
                    p50: 328,
                    p95: 512,
                    p99: 512,
                }),
            },
        ])
    }

    #[test]
    fn lookup_by_name_and_kind() {
        let s = sample_snapshot();
        assert_eq!(s.counter("storage.wal.forces"), Some(5));
        assert_eq!(s.gauge("txn.manager.active"), Some(3));
        assert_eq!(s.histogram("core.engine.update").unwrap().count, 2);
        assert_eq!(s.counter("txn.manager.active"), None);
        assert_eq!(s.get("no.such.metric"), None);
        // Sorted by name.
        assert_eq!(
            s.names(),
            vec!["core.engine.update", "storage.wal.forces", "txn.manager.active"]
        );
    }

    #[test]
    fn json_format() {
        let j = sample_snapshot().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"storage.wal.forces\": {\"type\": \"counter\", \"value\": 5}"));
        assert!(j.contains("\"txn.manager.active\": {\"type\": \"gauge\", \"value\": 3}"));
        assert!(j.contains("\"p95\": 512"));
    }

    #[test]
    fn prometheus_format() {
        let p = sample_snapshot().to_prometheus();
        assert!(p.contains("# TYPE storage_wal_forces counter\nstorage_wal_forces 5\n"));
        assert!(p.contains("# TYPE txn_manager_active gauge\ntxn_manager_active 3\n"));
        assert!(p.contains("core_engine_update{quantile=\"0.5\"} 328\n"));
        assert!(p.contains("core_engine_update_count 2\n"));
        assert!(p.contains("core_engine_update_max 512\n"));
    }
}
