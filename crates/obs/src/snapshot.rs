//! Point-in-time view of a registry, serializable to JSON and to
//! Prometheus text exposition. Both serializers are hand-rolled — the
//! formats are small and this crate takes no dependencies.

use crate::metric::{bucket_hi, HistogramSummary, HISTOGRAM_BUCKETS};

/// A histogram capture: the condensed summary plus the raw cumulative
/// bucket counts. The buckets make snapshots *diffable* — the
/// time-series sampler subtracts consecutive snapshots to get exact
/// per-interval distributions — and let the Prometheus exporter emit
/// real `_bucket` series instead of pre-baked quantiles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSample {
    pub summary: HistogramSummary,
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSample {
    /// A sample with empty buckets (tests and synthetic snapshots that
    /// only care about the summary).
    pub fn from_summary(summary: HistogramSummary) -> Self {
        HistogramSample { summary, buckets: [0; HISTOGRAM_BUCKETS] }
    }
}

/// One exported metric value. The histogram variant is deliberately
/// large (the raw bucket array rides along): snapshots are cold-path
/// values taken a handful of times per run, and keeping the variant
/// inline keeps `SampleValue` `Copy`.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SampleValue {
    Counter(u64),
    Gauge(i64),
    Histogram(HistogramSample),
}

/// A named metric value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricSample {
    pub name: String,
    pub value: SampleValue,
}

/// An ordered, immutable capture of every metric in a registry.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    samples: Vec<MetricSample>,
}

impl MetricsSnapshot {
    /// Builds a snapshot from samples, sorting by metric name.
    pub fn from_samples(mut samples: Vec<MetricSample>) -> Self {
        samples.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot { samples }
    }

    pub fn samples(&self) -> &[MetricSample] {
        &self.samples
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// All metric names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.samples.iter().map(|s| s.name.as_str()).collect()
    }

    /// Looks up a sample by exact name.
    pub fn get(&self, name: &str) -> Option<&SampleValue> {
        self.samples
            .binary_search_by(|s| s.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.samples[i].value)
    }

    /// Counter value by name, `None` if absent or not a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            SampleValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value by name, `None` if absent or not a gauge.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.get(name)? {
            SampleValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Histogram summary by name, `None` if absent or not a histogram.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        match self.get(name)? {
            SampleValue::Histogram(h) => Some(&h.summary),
            _ => None,
        }
    }

    /// Raw cumulative bucket counts by name.
    pub fn histogram_buckets(&self, name: &str) -> Option<&[u64; HISTOGRAM_BUCKETS]> {
        match self.get(name)? {
            SampleValue::Histogram(h) => Some(&h.buckets),
            _ => None,
        }
    }

    /// Serializes to a JSON object keyed by metric name:
    ///
    /// ```json
    /// {
    ///   "core.engine.update": {"type": "histogram", "count": 2, "sum": 840,
    ///                          "max": 512, "p50": 328, "p95": 512, "p99": 512},
    ///   "storage.wal.forces": {"type": "counter", "value": 5},
    ///   "txn.manager.active": {"type": "gauge", "value": 0}
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, s) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str("  ");
            push_json_string(&mut out, &s.name);
            out.push_str(": ");
            match &s.value {
                SampleValue::Counter(v) => {
                    out.push_str(&format!("{{\"type\": \"counter\", \"value\": {v}}}"));
                }
                SampleValue::Gauge(v) => {
                    out.push_str(&format!("{{\"type\": \"gauge\", \"value\": {v}}}"));
                }
                SampleValue::Histogram(h) => {
                    let h = &h.summary;
                    out.push_str(&format!(
                        "{{\"type\": \"histogram\", \"count\": {}, \"sum\": {}, \"max\": {}, \
                         \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                        h.count, h.sum, h.max, h.p50, h.p95, h.p99
                    ));
                }
            }
        }
        out.push_str("\n}");
        out
    }

    /// Serializes to Prometheus text exposition. Dots become
    /// underscores; histograms export as native `histogram` metrics:
    /// cumulative `_bucket{le="..."}` series over the non-empty log2
    /// buckets plus the mandatory `le="+Inf"`, `_sum`, and `_count`,
    /// with the observed maximum as an extra `_max` series:
    ///
    /// ```text
    /// # HELP core_engine_update SIAS metric core.engine.update
    /// # TYPE core_engine_update histogram
    /// core_engine_update_bucket{le="511"} 1
    /// core_engine_update_bucket{le="1023"} 2
    /// core_engine_update_bucket{le="+Inf"} 2
    /// core_engine_update_sum 840
    /// core_engine_update_count 2
    /// core_engine_update_max 512
    /// ```
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            let name: String =
                s.name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect();
            out.push_str(&format!("# HELP {name} "));
            push_prom_help(&mut out, &format!("SIAS metric {}", s.name));
            out.push('\n');
            match &s.value {
                SampleValue::Counter(v) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
                }
                SampleValue::Gauge(v) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
                }
                SampleValue::Histogram(h) => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    let mut cumulative = 0u64;
                    for (i, &c) in h.buckets.iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        cumulative += c;
                        out.push_str(&format!("{name}_bucket{{le=\""));
                        // le is inclusive, matching bucket_hi exactly.
                        push_prom_label_value(&mut out, &bucket_hi(i).to_string());
                        out.push_str(&format!("\"}} {cumulative}\n"));
                    }
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.summary.count));
                    out.push_str(&format!("{name}_sum {}\n", h.summary.sum));
                    out.push_str(&format!("{name}_count {}\n", h.summary.count));
                    out.push_str(&format!("{name}_max {}\n", h.summary.max));
                }
            }
        }
        out
    }
}

/// Escapes a HELP line per the exposition format: backslash and
/// line-feed only (quotes are legal in help text).
fn push_prom_help(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Escapes a label value: backslash, double-quote, and line-feed.
fn push_prom_label_value(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Histogram;

    fn sample_snapshot() -> MetricsSnapshot {
        let hist = Histogram::new();
        hist.record(328);
        hist.record(512);
        MetricsSnapshot::from_samples(vec![
            MetricSample { name: "txn.manager.active".into(), value: SampleValue::Gauge(3) },
            MetricSample { name: "storage.wal.forces".into(), value: SampleValue::Counter(5) },
            MetricSample {
                name: "core.engine.update".into(),
                value: SampleValue::Histogram(hist.sample()),
            },
        ])
    }

    #[test]
    fn lookup_by_name_and_kind() {
        let s = sample_snapshot();
        assert_eq!(s.counter("storage.wal.forces"), Some(5));
        assert_eq!(s.gauge("txn.manager.active"), Some(3));
        assert_eq!(s.histogram("core.engine.update").unwrap().count, 2);
        assert_eq!(s.counter("txn.manager.active"), None);
        assert_eq!(s.get("no.such.metric"), None);
        // Sorted by name.
        assert_eq!(
            s.names(),
            vec!["core.engine.update", "storage.wal.forces", "txn.manager.active"]
        );
    }

    #[test]
    fn json_format() {
        let j = sample_snapshot().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"storage.wal.forces\": {\"type\": \"counter\", \"value\": 5}"));
        assert!(j.contains("\"txn.manager.active\": {\"type\": \"gauge\", \"value\": 3}"));
        assert!(j.contains("\"p95\": 512"));
    }

    #[test]
    fn prometheus_format() {
        let p = sample_snapshot().to_prometheus();
        assert!(p.contains("# HELP storage_wal_forces SIAS metric storage.wal.forces\n"));
        assert!(p.contains("# TYPE storage_wal_forces counter\nstorage_wal_forces 5\n"));
        assert!(p.contains("# TYPE txn_manager_active gauge\ntxn_manager_active 3\n"));
        assert!(p.contains("# TYPE core_engine_update histogram\n"));
        // 328 -> bucket [256,512) le=511; 512 -> bucket [512,1024) le=1023.
        assert!(p.contains("core_engine_update_bucket{le=\"511\"} 1\n"));
        assert!(p.contains("core_engine_update_bucket{le=\"1023\"} 2\n"));
        assert!(p.contains("core_engine_update_bucket{le=\"+Inf\"} 2\n"));
        assert!(p.contains("core_engine_update_sum 840\n"));
        assert!(p.contains("core_engine_update_count 2\n"));
        assert!(p.contains("core_engine_update_max 512\n"));
        // No stale summary-style quantile labels.
        assert!(!p.contains("quantile="));
    }

    #[test]
    fn prometheus_buckets_are_cumulative_and_sparse() {
        let hist = Histogram::new();
        for _ in 0..3 {
            hist.record(1); // bucket le="1"
        }
        hist.record(1_000_000); // bucket [2^19, 2^20) le="1048575"
        let s = MetricsSnapshot::from_samples(vec![MetricSample {
            name: "m".into(),
            value: SampleValue::Histogram(hist.sample()),
        }]);
        let p = s.to_prometheus();
        assert!(p.contains("m_bucket{le=\"1\"} 3\n"));
        assert!(p.contains("m_bucket{le=\"1048575\"} 4\n"));
        assert!(p.contains("m_bucket{le=\"+Inf\"} 4\n"));
        // Empty buckets between the two are not emitted.
        assert_eq!(p.matches("m_bucket{").count(), 3);
    }

    #[test]
    fn prometheus_help_is_escaped() {
        let s = MetricsSnapshot::from_samples(vec![MetricSample {
            name: "weird\\name\nwith.newline".into(),
            value: SampleValue::Counter(1),
        }]);
        let p = s.to_prometheus();
        // The raw backslash and newline never appear unescaped in HELP.
        assert!(p.contains("SIAS metric weird\\\\name\\nwith.newline\n"));
    }
}
