//! B+-tree node format.
//!
//! A node occupies one page body (after the common page header):
//!
//! ```text
//! offset  size  field
//! 0       1     kind (1 = leaf, 2 = internal)
//! 2       2     entry count
//! 4       4     right sibling block (leaf only; u32::MAX = none)
//! 8       4     first child block (internal only)
//! 16      ...   entries
//! ```
//!
//! Leaf entries are `(key u64, val u64)` pairs sorted on the composite;
//! internal entries are `(key u64, val u64, child u32)` triples where
//! `child` holds entries `>= (key, val)` and the header's first-child
//! holds entries below the first separator.

use sias_common::{SiasError, SiasResult, PAGE_SIZE};
use sias_storage::page::{Page, PAGE_HEADER_SIZE};

const HEADER: usize = 16;
const BODY: usize = PAGE_SIZE - PAGE_HEADER_SIZE;

/// Maximum leaf entries per node.
pub const LEAF_CAPACITY: usize = (BODY - HEADER) / 16;
/// Maximum internal separators per node.
pub const INTERNAL_CAPACITY: usize = (BODY - HEADER) / 20;

const KIND_LEAF: u8 = 1;
const KIND_INTERNAL: u8 = 2;

/// Leaf or internal.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeKind {
    /// Holds `(key, value)` entries.
    Leaf,
    /// Holds separators and child block numbers.
    Internal,
}

/// In-memory image of one node (copied out of / into a page).
#[derive(Clone, Debug)]
pub struct Node {
    /// Leaf or internal.
    pub kind: NodeKind,
    /// Sorted `(key, val)` pairs; for internal nodes these are the
    /// separators.
    pub entries: Vec<(u64, u64)>,
    /// Internal only: `children.len() == entries.len() + 1`.
    pub children: Vec<u32>,
    /// Leaf only: next leaf in key order.
    pub right_sibling: Option<u32>,
}

impl Node {
    /// A leaf with no entries.
    pub fn empty_leaf() -> Node {
        Node {
            kind: NodeKind::Leaf,
            entries: Vec::new(),
            children: Vec::new(),
            right_sibling: None,
        }
    }

    /// A new root above a split: `left` and `right` separated by `sep`.
    pub fn new_root(left: u32, sep: (u64, u64), right: u32) -> Node {
        Node {
            kind: NodeKind::Internal,
            entries: vec![sep],
            children: vec![left, right],
            right_sibling: None,
        }
    }

    /// Deserializes a node from a page.
    pub fn read(page: &Page) -> SiasResult<Node> {
        let b = page.body();
        let kind = match b[0] {
            KIND_LEAF => NodeKind::Leaf,
            KIND_INTERNAL => NodeKind::Internal,
            k => return Err(SiasError::Index(format!("bad node kind byte {k}"))),
        };
        let count = u16::from_le_bytes([b[2], b[3]]) as usize;
        let sib = u32::from_le_bytes(b[4..8].try_into().unwrap());
        let first_child = u32::from_le_bytes(b[8..12].try_into().unwrap());
        let mut entries = Vec::with_capacity(count);
        let mut children = Vec::new();
        match kind {
            NodeKind::Leaf => {
                for i in 0..count {
                    let off = HEADER + i * 16;
                    let k = u64::from_le_bytes(b[off..off + 8].try_into().unwrap());
                    let v = u64::from_le_bytes(b[off + 8..off + 16].try_into().unwrap());
                    entries.push((k, v));
                }
            }
            NodeKind::Internal => {
                children.push(first_child);
                for i in 0..count {
                    let off = HEADER + i * 20;
                    let k = u64::from_le_bytes(b[off..off + 8].try_into().unwrap());
                    let v = u64::from_le_bytes(b[off + 8..off + 16].try_into().unwrap());
                    let c = u32::from_le_bytes(b[off + 16..off + 20].try_into().unwrap());
                    entries.push((k, v));
                    children.push(c);
                }
            }
        }
        Ok(Node {
            kind,
            entries,
            children,
            right_sibling: if sib == u32::MAX { None } else { Some(sib) },
        })
    }

    /// Serializes the node into a page body.
    pub fn write(&self, page: &mut Page) {
        let b = page.body_mut();
        b[..HEADER].fill(0);
        b[0] = match self.kind {
            NodeKind::Leaf => KIND_LEAF,
            NodeKind::Internal => KIND_INTERNAL,
        };
        b[2..4].copy_from_slice(&(self.entries.len() as u16).to_le_bytes());
        b[4..8].copy_from_slice(&self.right_sibling.unwrap_or(u32::MAX).to_le_bytes());
        match self.kind {
            NodeKind::Leaf => {
                debug_assert!(self.entries.len() <= LEAF_CAPACITY);
                for (i, &(k, v)) in self.entries.iter().enumerate() {
                    let off = HEADER + i * 16;
                    b[off..off + 8].copy_from_slice(&k.to_le_bytes());
                    b[off + 8..off + 16].copy_from_slice(&v.to_le_bytes());
                }
            }
            NodeKind::Internal => {
                debug_assert!(self.entries.len() <= INTERNAL_CAPACITY);
                debug_assert_eq!(self.children.len(), self.entries.len() + 1);
                b[8..12].copy_from_slice(&self.children[0].to_le_bytes());
                for (i, &(k, v)) in self.entries.iter().enumerate() {
                    let off = HEADER + i * 20;
                    b[off..off + 8].copy_from_slice(&k.to_le_bytes());
                    b[off + 8..off + 16].copy_from_slice(&v.to_le_bytes());
                    b[off + 16..off + 20].copy_from_slice(&self.children[i + 1].to_le_bytes());
                }
            }
        }
    }

    /// Inserts `(key, val)` into a leaf in sorted position; returns
    /// `false` when the exact pair already exists.
    pub fn leaf_insert(&mut self, key: u64, val: u64) -> bool {
        debug_assert_eq!(self.kind, NodeKind::Leaf);
        match self.entries.binary_search(&(key, val)) {
            Ok(_) => false,
            Err(pos) => {
                self.entries.insert(pos, (key, val));
                true
            }
        }
    }

    /// Removes the exact `(key, val)` pair from a leaf.
    pub fn leaf_remove(&mut self, key: u64, val: u64) -> bool {
        debug_assert_eq!(self.kind, NodeKind::Leaf);
        match self.entries.binary_search(&(key, val)) {
            Ok(pos) => {
                self.entries.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Splits a full leaf; `self` keeps the lower half, the returned node
    /// holds the upper half and the separator is its first entry.
    pub fn split_leaf(&mut self) -> ((u64, u64), Node) {
        debug_assert_eq!(self.kind, NodeKind::Leaf);
        let mid = self.entries.len() / 2;
        let right_entries = self.entries.split_off(mid);
        let sep = right_entries[0];
        (
            sep,
            Node {
                kind: NodeKind::Leaf,
                entries: right_entries,
                children: Vec::new(),
                right_sibling: None,
            },
        )
    }

    /// Routes a composite target through an internal node.
    pub fn child_for(&self, key: u64, val: u64) -> u32 {
        debug_assert_eq!(self.kind, NodeKind::Internal);
        let idx = self.entries.partition_point(|&s| s <= (key, val));
        self.children[idx]
    }

    /// Inserts a separator + right child into an internal node.
    pub fn internal_insert(&mut self, sep: (u64, u64), child: u32) {
        debug_assert_eq!(self.kind, NodeKind::Internal);
        let pos = self.entries.partition_point(|&s| s < sep);
        self.entries.insert(pos, sep);
        self.children.insert(pos + 1, child);
    }

    /// Splits a full internal node; the middle separator moves up.
    pub fn split_internal(&mut self) -> ((u64, u64), Node) {
        debug_assert_eq!(self.kind, NodeKind::Internal);
        let mid = self.entries.len() / 2;
        let sep_up = self.entries[mid];
        let right_entries = self.entries.split_off(mid + 1);
        self.entries.pop(); // drop sep_up from the left node
        let right_children = self.children.split_off(mid + 1);
        (
            sep_up,
            Node {
                kind: NodeKind::Internal,
                entries: right_entries,
                children: right_children,
                right_sibling: None,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn capacities_fit_page() {
        assert!(HEADER + LEAF_CAPACITY * 16 <= BODY);
        assert!(HEADER + INTERNAL_CAPACITY * 20 <= BODY);
        assert!(LEAF_CAPACITY >= 400, "sanity: 8K pages hold hundreds of entries");
    }

    #[test]
    fn leaf_roundtrip() {
        let mut n = Node::empty_leaf();
        for k in 0..50u64 {
            assert!(n.leaf_insert(k * 3, k));
        }
        n.right_sibling = Some(77);
        let mut p = Page::new();
        n.write(&mut p);
        let m = Node::read(&p).unwrap();
        assert_eq!(m.kind, NodeKind::Leaf);
        assert_eq!(m.entries, n.entries);
        assert_eq!(m.right_sibling, Some(77));
    }

    #[test]
    fn internal_roundtrip() {
        let mut n = Node::new_root(1, (10, 0), 2);
        n.internal_insert((20, 5), 3);
        let mut p = Page::new();
        n.write(&mut p);
        let m = Node::read(&p).unwrap();
        assert_eq!(m.kind, NodeKind::Internal);
        assert_eq!(m.entries, vec![(10, 0), (20, 5)]);
        assert_eq!(m.children, vec![1, 2, 3]);
    }

    #[test]
    fn routing_boundaries() {
        let n = Node::new_root(1, (10, 5), 2);
        assert_eq!(n.child_for(9, u64::MAX), 1);
        assert_eq!(n.child_for(10, 4), 1);
        assert_eq!(n.child_for(10, 5), 2, "separator itself routes right");
        assert_eq!(n.child_for(11, 0), 2);
    }

    #[test]
    fn leaf_split_halves() {
        let mut n = Node::empty_leaf();
        for k in 0..10u64 {
            n.leaf_insert(k, 0);
        }
        let (sep, right) = n.split_leaf();
        assert_eq!(n.entries.len(), 5);
        assert_eq!(right.entries.len(), 5);
        assert_eq!(sep, (5, 0));
        assert_eq!(right.entries[0], sep);
    }

    #[test]
    fn internal_split_moves_middle_up() {
        let mut n = Node::new_root(0, (10, 0), 1);
        n.internal_insert((20, 0), 2);
        n.internal_insert((30, 0), 3);
        n.internal_insert((40, 0), 4);
        n.internal_insert((50, 0), 5);
        // entries: 10,20,30,40,50 / children 0..=5
        let (sep, right) = n.split_internal();
        assert_eq!(sep, (30, 0));
        assert_eq!(n.entries, vec![(10, 0), (20, 0)]);
        assert_eq!(n.children, vec![0, 1, 2]);
        assert_eq!(right.entries, vec![(40, 0), (50, 0)]);
        assert_eq!(right.children, vec![3, 4, 5]);
    }

    #[test]
    fn bad_kind_byte_rejected() {
        let p = Page::new();
        assert!(Node::read(&p).is_err());
    }
}
