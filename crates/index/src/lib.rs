//! Page-backed B+-tree.
//!
//! §4.3 of the paper: "When assuming a B⁺ tree index on a relation R, the
//! index records are traditionally comprised of a ⟨key, TID⟩ pair. Since
//! SIAS-Chains identifies all versions of a data item by using a VID, the
//! index record is comprised of a ⟨key, VID⟩ pair."
//!
//! This crate provides that B+-tree, generic over what the 64-bit value
//! means:
//!
//! * the **SIAS** engine stores one `⟨key, VID⟩` record per *data item* —
//!   updates that do not change the key never touch the index;
//! * the **SI baseline** stores one `⟨key, packed TID⟩` record per *tuple
//!   version* — every update inserts a new index record, which is part of
//!   SI's write overhead the paper measures.
//!
//! The tree lives in buffer-pool pages of its own relation, so index I/O
//! shows up in the device statistics and block traces like any other
//! page access. Duplicate keys are supported by ordering entries on the
//! composite `(key, value)` pair. Deletion is lazy (no page merging),
//! like PostgreSQL's nbtree.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod node;

use std::sync::Arc;

use parking_lot::RwLock;
use sias_common::{BlockId, RelId, SiasError, SiasResult};
use sias_storage::BufferPool;

use node::{Node, NodeKind, INTERNAL_CAPACITY, LEAF_CAPACITY};

/// A concurrent, page-backed B+-tree mapping `u64` keys to `u64` values,
/// with duplicate keys allowed (entries are unique on `(key, value)`).
pub struct BPlusTree {
    pool: Arc<BufferPool>,
    rel: RelId,
    state: RwLock<TreeState>,
}

struct TreeState {
    root: BlockId,
    height: u32,
    len: u64,
}

impl BPlusTree {
    /// Creates a new tree in (empty) relation `rel` of `pool`.
    pub fn create(pool: Arc<BufferPool>, rel: RelId) -> SiasResult<Self> {
        pool.space().create_relation(rel);
        let root = pool.allocate_block(rel)?;
        pool.with_page_mut(rel, root, |p| Node::empty_leaf().write(p))?;
        Ok(BPlusTree { pool, rel, state: RwLock::new(TreeState { root, height: 1, len: 0 }) })
    }

    /// The relation holding the index pages.
    pub fn relation(&self) -> RelId {
        self.rel
    }

    /// Number of live entries.
    pub fn len(&self) -> u64 {
        self.state.read().len
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Height of the tree (1 = root is a leaf).
    pub fn height(&self) -> u32 {
        self.state.read().height
    }

    fn read_node(&self, block: BlockId) -> SiasResult<Node> {
        self.pool.with_page(self.rel, block, Node::read)?
    }

    fn write_node(&self, block: BlockId, node: &Node) -> SiasResult<()> {
        self.pool.with_page_mut(self.rel, block, |p| node.write(p))
    }

    /// Descends to the leaf that would contain `(key, val)`, recording
    /// the path of internal blocks visited.
    fn descend(&self, root: BlockId, key: u64, val: u64) -> SiasResult<(BlockId, Vec<BlockId>)> {
        let mut path = Vec::new();
        let mut block = root;
        loop {
            let node = self.read_node(block)?;
            match node.kind {
                NodeKind::Leaf => return Ok((block, path)),
                NodeKind::Internal => {
                    path.push(block);
                    block = node.child_for(key, val);
                }
            }
        }
    }

    /// Inserts `(key, val)`. Duplicate `(key, val)` pairs are rejected
    /// with an error (they would be ambiguous to remove).
    pub fn insert(&self, key: u64, val: u64) -> SiasResult<()> {
        let mut state = self.state.write();
        let (leaf_block, path) = self.descend(state.root, key, val)?;
        let mut leaf = self.read_node(leaf_block)?;
        if !leaf.leaf_insert(key, val) {
            return Err(SiasError::Index(format!("duplicate entry ({key}, {val})")));
        }
        state.len += 1;
        if leaf.entries.len() <= LEAF_CAPACITY {
            return self.write_node(leaf_block, &leaf);
        }
        // Leaf overflow: split and propagate.
        let (sep, right) = leaf.split_leaf();
        let right_block = self.pool.allocate_block(self.rel)?;
        let mut right = right;
        right.right_sibling = leaf.right_sibling;
        leaf.right_sibling = Some(right_block);
        self.write_node(right_block, &right)?;
        self.write_node(leaf_block, &leaf)?;
        self.propagate_split(&mut state, path, sep, right_block)
    }

    /// Inserts the separator for a freshly split child into the parent
    /// chain, splitting parents as needed and growing the root.
    fn propagate_split(
        &self,
        state: &mut TreeState,
        mut path: Vec<BlockId>,
        mut sep: (u64, u64),
        mut new_child: BlockId,
    ) -> SiasResult<()> {
        loop {
            match path.pop() {
                Some(parent_block) => {
                    let mut parent = self.read_node(parent_block)?;
                    parent.internal_insert(sep, new_child);
                    if parent.entries.len() <= INTERNAL_CAPACITY {
                        return self.write_node(parent_block, &parent);
                    }
                    let (psep, pright) = parent.split_internal();
                    let pright_block = self.pool.allocate_block(self.rel)?;
                    self.write_node(pright_block, &pright)?;
                    self.write_node(parent_block, &parent)?;
                    sep = psep;
                    new_child = pright_block;
                }
                None => {
                    // Root split: grow the tree by one level.
                    let old_root = state.root;
                    let new_root_block = self.pool.allocate_block(self.rel)?;
                    let root = Node::new_root(old_root, sep, new_child);
                    self.write_node(new_root_block, &root)?;
                    state.root = new_root_block;
                    state.height += 1;
                    return Ok(());
                }
            }
        }
    }

    /// Removes the exact `(key, val)` entry. Returns whether it existed.
    /// No rebalancing (lazy deletion).
    pub fn remove(&self, key: u64, val: u64) -> SiasResult<bool> {
        let mut state = self.state.write();
        let (leaf_block, _path) = self.descend(state.root, key, val)?;
        let mut leaf = self.read_node(leaf_block)?;
        let existed = leaf.leaf_remove(key, val);
        if existed {
            state.len -= 1;
            self.write_node(leaf_block, &leaf)?;
        }
        Ok(existed)
    }

    /// Returns every value stored under `key`, ascending.
    pub fn lookup(&self, key: u64) -> SiasResult<Vec<u64>> {
        Ok(self.range(key, key)?.into_iter().map(|(_, v)| v).collect())
    }

    /// Returns the first value under `key` (the common unique-key path).
    pub fn lookup_one(&self, key: u64) -> SiasResult<Option<u64>> {
        let state = self.state.read();
        let (leaf_block, _path) = self.descend(state.root, key, 0)?;
        let mut block = Some(leaf_block);
        while let Some(b) = block {
            let leaf = self.read_node(b)?;
            for &(k, v) in &leaf.entries {
                if k == key {
                    return Ok(Some(v));
                }
                if k > key {
                    return Ok(None);
                }
            }
            block = leaf.right_sibling;
        }
        Ok(None)
    }

    /// Returns all `(key, value)` entries with `lo <= key <= hi`,
    /// ascending.
    pub fn range(&self, lo: u64, hi: u64) -> SiasResult<Vec<(u64, u64)>> {
        if lo > hi {
            return Ok(Vec::new());
        }
        let state = self.state.read();
        let (leaf_block, _path) = self.descend(state.root, lo, 0)?;
        let mut out = Vec::new();
        let mut block = Some(leaf_block);
        while let Some(b) = block {
            let leaf = self.read_node(b)?;
            for &(k, v) in &leaf.entries {
                if k > hi {
                    return Ok(out);
                }
                if k >= lo {
                    out.push((k, v));
                }
            }
            block = leaf.right_sibling;
        }
        Ok(out)
    }

    /// Verifies structural invariants (test/debug aid): sorted leaves,
    /// consistent separators, correct entry count. Returns the number of
    /// entries seen.
    pub fn check_invariants(&self) -> SiasResult<u64> {
        let state = self.state.read();
        let mut count = 0u64;
        let mut prev: Option<(u64, u64)> = None;
        // Walk the leaf chain from the leftmost leaf.
        let (mut leaf_block, _) = self.descend(state.root, 0, 0)?;
        loop {
            let leaf = self.read_node(leaf_block)?;
            if leaf.kind != NodeKind::Leaf {
                return Err(SiasError::Index("descend(0) did not reach a leaf".into()));
            }
            for &(k, v) in &leaf.entries {
                if let Some(p) = prev {
                    if (k, v) <= p {
                        return Err(SiasError::Index(format!(
                            "entries out of order: {p:?} then {:?}",
                            (k, v)
                        )));
                    }
                }
                prev = Some((k, v));
                count += 1;
            }
            match leaf.right_sibling {
                Some(next) => leaf_block = next,
                None => break,
            }
        }
        if count != state.len {
            return Err(SiasError::Index(format!(
                "len mismatch: counted {count}, recorded {}",
                state.len
            )));
        }
        Ok(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sias_storage::device::{Device, MemDevice};
    use sias_storage::Tablespace;

    fn tree() -> BPlusTree {
        let dev = Arc::new(MemDevice::standalone(1 << 18));
        let space = Arc::new(Tablespace::new(1 << 18));
        let pool = Arc::new(BufferPool::new(256, dev, space));
        BPlusTree::create(pool, RelId(100)).unwrap()
    }

    #[test]
    fn empty_tree() {
        let t = tree();
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert_eq!(t.lookup(5).unwrap(), Vec::<u64>::new());
        assert_eq!(t.lookup_one(5).unwrap(), None);
        assert_eq!(t.range(0, u64::MAX).unwrap(), vec![]);
        t.check_invariants().unwrap();
    }

    #[test]
    fn insert_and_lookup_small() {
        let t = tree();
        for k in [5u64, 1, 9, 3, 7] {
            t.insert(k, k * 10).unwrap();
        }
        assert_eq!(t.len(), 5);
        assert_eq!(t.lookup_one(3).unwrap(), Some(30));
        assert_eq!(t.lookup_one(4).unwrap(), None);
        assert_eq!(
            t.range(0, u64::MAX).unwrap(),
            vec![(1, 10), (3, 30), (5, 50), (7, 70), (9, 90)]
        );
        t.check_invariants().unwrap();
    }

    #[test]
    fn duplicate_keys_supported() {
        let t = tree();
        t.insert(7, 1).unwrap();
        t.insert(7, 2).unwrap();
        t.insert(7, 3).unwrap();
        assert_eq!(t.lookup(7).unwrap(), vec![1, 2, 3]);
        // Exact duplicate pair rejected.
        assert!(t.insert(7, 2).is_err());
        t.check_invariants().unwrap();
    }

    #[test]
    fn split_grows_tree() {
        let t = tree();
        let n = (LEAF_CAPACITY * 3) as u64;
        for k in 0..n {
            t.insert(k, k).unwrap();
        }
        assert!(t.height() >= 2, "tree must have split");
        assert_eq!(t.len(), n);
        for k in (0..n).step_by(37) {
            assert_eq!(t.lookup_one(k).unwrap(), Some(k), "key {k}");
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn large_random_insert_remove() {
        use rand::prelude::*;
        let t = tree();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut keys: Vec<u64> = (0..20_000u64).collect();
        keys.shuffle(&mut rng);
        for &k in &keys {
            t.insert(k, k + 1).unwrap();
        }
        assert_eq!(t.check_invariants().unwrap(), 20_000);
        assert!(t.height() >= 2);
        // Remove a random half.
        keys.shuffle(&mut rng);
        for &k in &keys[..10_000] {
            assert!(t.remove(k, k + 1).unwrap(), "key {k}");
        }
        assert_eq!(t.check_invariants().unwrap(), 10_000);
        for &k in &keys[..10_000] {
            assert_eq!(t.lookup_one(k).unwrap(), None);
        }
        for &k in &keys[10_000..] {
            assert_eq!(t.lookup_one(k).unwrap(), Some(k + 1));
        }
    }

    #[test]
    fn range_scans_cross_leaves() {
        let t = tree();
        let n = (LEAF_CAPACITY * 2 + 10) as u64;
        for k in 0..n {
            t.insert(k * 2, k).unwrap(); // even keys only
        }
        let lo = (LEAF_CAPACITY as u64) - 5;
        let hi = (LEAF_CAPACITY as u64) * 2 + 5;
        let got = t.range(lo, hi).unwrap();
        let expect: Vec<(u64, u64)> =
            (0..n).map(|k| (k * 2, k)).filter(|&(k, _)| k >= lo && k <= hi).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn remove_missing_returns_false() {
        let t = tree();
        t.insert(1, 1).unwrap();
        assert!(!t.remove(2, 2).unwrap());
        assert!(!t.remove(1, 99).unwrap(), "value must match too");
        assert!(t.remove(1, 1).unwrap());
        assert!(t.is_empty());
    }

    #[test]
    fn sequential_and_reverse_insertion_orders() {
        for rev in [false, true] {
            let t = tree();
            let n = (LEAF_CAPACITY * 4) as u64;
            let iter: Box<dyn Iterator<Item = u64>> =
                if rev { Box::new((0..n).rev()) } else { Box::new(0..n) };
            for k in iter {
                t.insert(k, k).unwrap();
            }
            assert_eq!(t.check_invariants().unwrap(), n);
            assert_eq!(t.range(0, n).unwrap().len(), n as usize);
        }
    }

    #[test]
    fn index_io_hits_the_device() {
        // The tree lives in buffer pages: with a tiny pool, lookups cause
        // device reads — index I/O is part of the measured workload.
        let dev = Arc::new(MemDevice::standalone(1 << 18));
        let space = Arc::new(Tablespace::new(1 << 18));
        let pool = Arc::new(BufferPool::new(8, Arc::clone(&dev) as _, space));
        let t = BPlusTree::create(pool, RelId(100)).unwrap();
        for k in 0..(LEAF_CAPACITY * 8) as u64 {
            t.insert(k, k).unwrap();
        }
        assert!(dev.stats().host_write_pages > 0, "evictions must persist index pages");
        dev.reset_stats();
        for k in (0..(LEAF_CAPACITY * 8) as u64).step_by(101) {
            t.lookup_one(k).unwrap();
        }
        assert!(dev.stats().host_read_pages > 0, "cold lookups must read index pages");
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let t = Arc::new(tree());
        for k in 0..2000u64 {
            t.insert(k, k).unwrap();
        }
        let mut handles = vec![];
        for _ in 0..4 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for k in (0..2000u64).step_by(7) {
                    assert_eq!(t.lookup_one(k).unwrap(), Some(k));
                }
            }));
        }
        let tw = Arc::clone(&t);
        handles.push(std::thread::spawn(move || {
            for k in 2000..3000u64 {
                tw.insert(k, k).unwrap();
            }
        }));
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.check_invariants().unwrap(), 3000);
    }
}
