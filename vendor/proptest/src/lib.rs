//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so the workspace patches
//! `proptest` to this shim. It implements the subset the SIAS tests
//! use: the `proptest!` macro with `#![proptest_config(..)]`,
//! `prop_assert!` / `prop_assert_eq!`, `prop_oneof!`, `any::<T>()`,
//! integer-range and tuple strategies, `prop_map`, and
//! `proptest::collection::vec`.
//!
//! Generation is plain seeded randomization (splitmix64 keyed on the
//! test path) with a bias toward integer edge values. There is no
//! shrinking: a failing case reports its inputs via the assertion
//! message instead. Cases are deterministic per test name, so failures
//! reproduce exactly under `cargo test`.

#![forbid(unsafe_code)]

pub mod test_runner {
    use std::fmt;

    /// Knobs for the [`crate::proptest!`] runner. Only `cases` matters;
    /// the remaining field exists so `..ProptestConfig::default()`
    /// struct-update syntax has something to fill.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_shrink_iters: 0 }
        }
    }

    /// Failure raised by `prop_assert!` family macros; carries the
    /// formatted assertion message.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail(message: String) -> Self {
            TestCaseError { message }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic splitmix64 stream seeded from the test path, so
    /// every `cargo test` run generates the same cases.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_test(path: &str) -> Self {
            // FNV-1a over the test path gives a stable per-test seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in path.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        pub fn next(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values. Object-safe so [`BoxedStrategy`]
    /// can erase concrete types (needed by `prop_oneof!`, whose arms
    /// have distinct types).
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Uniform choice over same-valued strategies; backs `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next() % self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    // Bias toward the endpoints: range bugs live there.
                    match rng.next() % 8 {
                        0 => self.start,
                        1 => self.end - 1,
                        _ => self.start + (rng.next() as u128 % span) as $t,
                    }
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128) - (lo as u128) + 1;
                    match rng.next() % 8 {
                        0 => lo,
                        1 => hi,
                        _ => lo + (rng.next() as u128 % span) as $t,
                    }
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// Strategy behind [`crate::arbitrary::any`].
    pub struct AnyStrategy<T> {
        pub(crate) _marker: PhantomData<T>,
    }

    impl<T: super::arbitrary::Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    use super::strategy::AnyStrategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a full-domain default strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    // Edge values show up often; they find the bugs.
                    match rng.next() % 16 {
                        0 => 0,
                        1 => <$t>::MAX,
                        2 => 1,
                        _ => rng.next() as $t,
                    }
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next() & 1 == 1
        }
    }

    /// The full-domain strategy for `T`: `any::<u64>()` etc.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy { _marker: PhantomData }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length specifications accepted by [`vec`].
    pub trait SizeRange {
        fn pick_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for Range<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + (rng.next() as usize % (self.end - self.start))
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            lo + (rng.next() as usize % (hi - lo + 1))
        }
    }

    impl SizeRange for usize {
        fn pick_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// `proptest::collection::vec(element, len)` — a vector whose
    /// length is drawn from `len` and whose elements come from
    /// `element`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// `proptest::option::of(inner)` — yields `None` about a quarter of
    /// the time, otherwise `Some` of the inner strategy's value.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next() % 4 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies; each runs `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(
                                let $pat =
                                    $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                            )+
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

/// Assert inside a `proptest!` body; failure aborts the case with the
/// formatted message (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
                stringify!($left),
                stringify!($right),
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Inequality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u8> {
        prop_oneof![(0u8..4).prop_map(|v| v * 2), Just(9u8)]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_any_stay_in_domain(v in any::<u64>(), r in 3u64..10) {
            prop_assert!(r >= 3 && r < 10, "r out of range: {}", r);
            prop_assert_eq!(v, v);
        }

        #[test]
        fn vec_and_oneof_compose(xs in crate::collection::vec(small(), 1..8)) {
            prop_assert!(!xs.is_empty());
            for x in xs {
                prop_assert!(x == 9 || (x % 2 == 0 && x < 8), "unexpected draw {}", x);
            }
        }

        #[test]
        fn tuples_generate(pair in (any::<u8>(), 1usize..4)) {
            let (_, n) = pair;
            prop_assert!(n >= 1 && n < 4);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::y");
        assert_eq!(a.next(), b.next());
    }
}
