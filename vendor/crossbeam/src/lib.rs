//! Offline stand-in for `crossbeam`. The workspace declares the
//! dependency but no crate imports it; this empty shim satisfies
//! resolution without crates.io access. `std::thread::scope` covers the
//! scoped-thread use cases in-tree.

#![forbid(unsafe_code)]
