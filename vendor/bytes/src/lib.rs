//! Offline stand-in for the `bytes` crate.
//!
//! The build container has no crates.io access, so the workspace patches
//! `bytes` to this minimal implementation: an immutable, cheaply
//! cloneable byte buffer backed by `Arc<[u8]>`. Only the surface the
//! SIAS workspace uses is provided.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable slice of bytes.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::from(data) }
    }

    /// Wraps a static slice without copying.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes { data: Arc::from(data) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The contents as a plain slice.
    pub fn as_ref(&self) -> &[u8] {
        &self.data
    }

    /// Copies the contents into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_clone_share() {
        let b = Bytes::copy_from_slice(b"hello");
        let c = b.clone();
        assert_eq!(&b[..], b"hello");
        assert_eq!(b, c);
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
        assert_eq!(Bytes::new().len(), 0);
    }

    #[test]
    fn from_vec() {
        let b: Bytes = vec![1u8, 2, 3].into();
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }
}
