//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no crates.io access, so the workspace patches
//! `parking_lot` to this shim: the same API shape (non-poisoning
//! `lock()`/`read()`/`write()`, `Condvar::wait_for` taking `&mut guard`)
//! implemented over `std::sync`. Poisoned std locks are recovered with
//! `into_inner`, matching parking_lot's no-poisoning semantics.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Non-poisoning mutex over `std::sync::Mutex`.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`]. Holds the std guard in an `Option`
/// so [`Condvar::wait_for`] can take it by `&mut` (std's wait consumes
/// the guard; parking_lot's does not).
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(MutexGuard { inner: Some(e.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    fn get(&self) -> &std::sync::MutexGuard<'a, T> {
        self.inner.as_ref().expect("guard present outside wait")
    }

    fn get_mut(&mut self) -> &mut std::sync::MutexGuard<'a, T> {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.get()
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.get_mut()
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Result of [`Condvar::wait_for`].
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable compatible with [`Mutex`]; `wait_for` takes the
/// guard by `&mut` like parking_lot's.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present before wait");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present before wait");
        let (g, res) = self.inner.wait_timeout(g, timeout).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
        WaitTimeoutResult { timed_out: res.timed_out() }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// Non-poisoning reader-writer lock over `std::sync::RwLock`.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(|e| e.into_inner()) }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(|e| e.into_inner()) }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(RwLockReadGuard { inner: e.into_inner() })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(RwLockWriteGuard { inner: e.into_inner() })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);

        let rw = RwLock::new(5);
        assert_eq!(*rw.read(), 5);
        *rw.write() = 6;
        assert_eq!(*rw.read(), 6);
        assert!(rw.try_write().is_some());
        let _r = rw.read();
        assert!(rw.try_write().is_none());
    }

    #[test]
    fn condvar_wait_for_times_out_and_wakes() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(1));
        assert!(res.timed_out());
        assert!(!*g);
        drop(g);

        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            let _ = cv.wait_for(&mut g, Duration::from_millis(50));
        }
        drop(g);
        t.join().unwrap();
    }
}
