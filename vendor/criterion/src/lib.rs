//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so the workspace
//! patches `criterion` to this minimal harness. It runs each benchmark
//! for a fixed number of timed iterations and prints mean wall-clock
//! time per iteration — no statistics, no HTML reports — while keeping
//! the upstream API shape (`benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `criterion_group!` /
//! `criterion_main!`) so the bench targets compile and run unchanged.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

pub mod measurement {
    /// Marker trait matching criterion's measurement abstraction.
    pub trait Measurement {}

    /// Wall-clock time, the only measurement provided here.
    pub struct WallTime;

    impl Measurement for WallTime {}
}

use measurement::{Measurement, WallTime};

/// Identifier for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Accepts both `&str`/`String` names and [`BenchmarkId`]s.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl<S: Into<String>> IntoBenchmarkId for S {
    fn into_benchmark_id(self) -> String {
        self.into()
    }
}

/// Runs the measured routine; handed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size;
        let mut group = self.benchmark_group("criterion");
        group.sample_size(samples);
        group.bench_function(id, |b| f(b));
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_, WallTime> {
        let sample_size = self.sample_size;
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size, _measurement: PhantomData }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a, M: Measurement = WallTime> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    _measurement: PhantomData<M>,
}

impl<M: Measurement> BenchmarkGroup<'_, M> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        self.run(&id, |b| f(b));
        self
    }

    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        P: ?Sized,
        F: FnMut(&mut Bencher, &P),
    {
        let id = id.into_benchmark_id();
        self.run(&id, |b| f(b, input));
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        // One warm-up pass, then the timed pass.
        let mut warm = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut warm);
        let mut b = Bencher { iters: self.sample_size as u64, elapsed: Duration::ZERO };
        f(&mut b);
        let per_iter = b.elapsed.as_nanos() / u128::from(b.iters.max(1));
        println!("{}/{}: {} ns/iter ({} iters)", self.name, id, per_iter, b.iters);
    }

    pub fn finish(self) {}
}

/// Declares a function running each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_sum(c: &mut Criterion) {
        let mut g = c.benchmark_group("sum");
        g.sample_size(3);
        g.bench_function("iter", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::from_parameter(7u32), &7u32, |b, &n| {
            b.iter_with_setup(|| vec![n; 16], |v| v.iter().sum::<u32>())
        });
        g.finish();
    }

    criterion_group!(benches, bench_sum);

    #[test]
    fn harness_runs() {
        benches();
    }
}
