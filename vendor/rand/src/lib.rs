//! Offline stand-in for the `rand` crate.
//!
//! The build container has no crates.io access, so the workspace patches
//! `rand` to this shim. It provides the surface the SIAS workspace uses
//! — `rngs::StdRng`, `SeedableRng::seed_from_u64`, `RngExt::random` /
//! `random_range`, and slice `shuffle` via the prelude — backed by a
//! deterministic splitmix64 generator. The stream differs from upstream
//! `StdRng` (ChaCha), which is fine: callers only rely on seeded
//! determinism, not on specific values.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface; only the `u64` entry point is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from an [`RngCore`] stream.
pub trait Standard: Sized {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

/// Ranges that can be sampled to a uniform value.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_signed!(i8, i16, i32, i64, isize);

/// Convenience draws on any RNG; mirrors rand's `random`/`random_range`
/// method names.
pub trait RngExt: RngCore {
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// In-place uniform shuffling (Fisher-Yates), rand's `SliceRandom`.
pub trait SliceRandom {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for rand's
    /// `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{RngCore, RngExt, SampleRange, SeedableRng, SliceRandom, Standard};
}

// Some code spells the extension trait `Rng`; keep both names valid.
pub use RngExt as Rng;

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(3u32..=5);
            assert!((3..=5).contains(&w));
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
