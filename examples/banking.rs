//! Banking: snapshot isolation semantics and the first-updater-wins rule
//! on concurrent account transfers, running the *same* scenario on SIAS
//! and on the SI baseline to show identical transactional behaviour —
//! the paper changes the storage layout, not the isolation level.
//!
//! Also demonstrates SI's classic *write skew* anomaly (snapshot
//! isolation is not serializable, §2), which both engines exhibit alike.
//!
//! ```text
//! cargo run --example banking
//! ```

use sias::common::SiasError;
use sias::core::SiasDb;
use sias::si::SiDb;
use sias::storage::StorageConfig;
use sias::txn::MvccEngine;

fn balance<E: MvccEngine + ?Sized>(engine: &E, rel: sias::common::RelId, key: u64) -> i64 {
    let t = engine.begin();
    let raw = engine.get(&t, rel, key).unwrap().expect("account exists");
    engine.commit(t).unwrap();
    i64::from_le_bytes(raw.as_ref().try_into().unwrap())
}

fn set_balance<E: MvccEngine + ?Sized>(
    engine: &E,
    t: &sias::txn::Txn,
    rel: sias::common::RelId,
    key: u64,
    v: i64,
) -> Result<(), SiasError> {
    engine.update(t, rel, key, &v.to_le_bytes())
}

fn demo<E: MvccEngine>(engine: &E) {
    println!("=== engine: {} ===", engine.name());
    let rel = engine.create_relation("accounts");
    let t = engine.begin();
    engine.insert(&t, rel, 1, &100i64.to_le_bytes()).unwrap(); // alice
    engine.insert(&t, rel, 2, &100i64.to_le_bytes()).unwrap(); // bob
    engine.commit(t).unwrap();

    // --- A transfer is atomic. -----------------------------------------
    let t = engine.begin();
    set_balance(engine, &t, rel, 1, 70).unwrap();
    set_balance(engine, &t, rel, 2, 130).unwrap();
    engine.commit(t).unwrap();
    println!("after transfer: alice={} bob={}", balance(engine, rel, 1), balance(engine, rel, 2));
    assert_eq!(balance(engine, rel, 1) + balance(engine, rel, 2), 200);

    // --- Aborted transfers leave no trace. ------------------------------
    let t = engine.begin();
    set_balance(engine, &t, rel, 1, 0).unwrap();
    set_balance(engine, &t, rel, 2, 200).unwrap();
    engine.abort(t);
    assert_eq!(balance(engine, rel, 1), 70);
    println!("aborted transfer rolled back: alice={}", balance(engine, rel, 1));

    // --- First-updater-wins on a write-write conflict. -------------------
    let a = engine.begin();
    let b = engine.begin();
    set_balance(engine, &a, rel, 1, 71).unwrap();
    engine.commit(a).unwrap();
    let err = set_balance(engine, &b, rel, 1, 72).unwrap_err();
    println!("concurrent updater rejected: {err}");
    assert!(matches!(err, SiasError::WriteConflict { .. }));
    engine.abort(b);

    // --- Write skew: SI permits it (it is not serializable). ------------
    // Constraint the app *wants*: alice + bob >= 100. Two transactions
    // each check the constraint on their snapshot and debit different
    // accounts — both commit, violating the invariant.
    let t = engine.begin();
    set_balance(engine, &t, rel, 1, 60).unwrap();
    set_balance(engine, &t, rel, 2, 60).unwrap();
    engine.commit(t).unwrap();

    let ta = engine.begin();
    let tb = engine.begin();
    // Each transaction checks the constraint on its own snapshot and
    // believes an 80-unit debit keeps the combined balance at 40 ≥ 0.
    let sum_on_snapshot = 60 + balance(engine, rel, 2);
    assert!(sum_on_snapshot - 80 >= 0);
    set_balance(engine, &ta, rel, 1, 0).unwrap(); // alice: 60 → 0
    set_balance(engine, &tb, rel, 2, 0).unwrap(); // bob:   60 → 0
    engine.commit(ta).unwrap();
    engine.commit(tb).unwrap(); // disjoint write sets: no conflict!
    let total = balance(engine, rel, 1) + balance(engine, rel, 2);
    println!("write skew committed under SI: alice+bob = {total} (constraint was >= 100)");
    assert!(total < 100, "SI permits write skew — on both engines");
    println!();
}

fn main() {
    demo(&SiasDb::open(StorageConfig::in_memory()));
    demo(&SiDb::open(StorageConfig::in_memory()));
    println!("both engines implement identical snapshot-isolation semantics.");
}
