//! Blocktrace: a miniature Figures 3–4 — run a short TPC-C burst on the
//! Flash model under both engines and print their I/O patterns side by
//! side: SIAS appends (read-mostly device traffic, sequential writes),
//! SI scatters in-place updates.
//!
//! ```text
//! cargo run --release --example blocktrace
//! ```

use sias::core::SiasDb;
use sias::si::SiDb;
use sias::storage::{IoDir, StorageConfig, StorageStack};
use sias::txn::MvccEngine;
use sias::workload::{load, run_benchmark, DriverConfig, TpccConfig};

fn run<E: MvccEngine>(engine: &E, stack: &StorageStack) {
    let cfg = TpccConfig::scaled(5);
    let tables = load(engine, &cfg).expect("load");
    engine.maintenance(true);
    stack.data.reset_stats();
    stack.trace.clear();
    stack.trace.enable();
    let dcfg = DriverConfig::for_warehouses(5).with_duration(60).with_think_scale(0.2);
    let res = run_benchmark(engine, &tables, &cfg, &dcfg, &stack.clock).expect("bench");
    stack.trace.disable();

    let events = stack.trace.events();
    let s = stack.trace.summary();
    let total = (s.read_ops + s.write_ops).max(1) as f64;
    let writes: Vec<u64> = events.iter().filter(|e| e.dir == IoDir::Write).map(|e| e.lba).collect();
    let distinct: std::collections::BTreeSet<u64> = writes.iter().copied().collect();
    println!("--- {} ---", engine.name());
    println!("  NOTPM {:.0}", res.notpm);
    println!(
        "  device ops: {:.1}% reads / {:.1}% writes  ({} + {})",
        100.0 * s.read_ops as f64 / total,
        100.0 * s.write_ops as f64 / total,
        s.read_ops,
        s.write_ops
    );
    println!("  write volume: {:.1} MB", s.write_mb);
    if !writes.is_empty() {
        let rewrite = writes.len() as f64 / distinct.len() as f64;
        println!(
            "  write pattern: {} writes over {} distinct pages — {:.1} writes/page: {}",
            writes.len(),
            distinct.len(),
            rewrite,
            if rewrite < 3.0 {
                "write-mostly-once appends (Figure 3)"
            } else {
                "in-place rewrites (Figure 4)"
            }
        );
    }
    // A low-fi scatter plot: time on x, LBA bucket on y.
    let (t_max, lba_max) =
        events.iter().fold((1u64, 1u64), |(t, l), e| (t.max(e.time_us), l.max(e.lba)));
    const W: usize = 72;
    const H: usize = 14;
    let mut grid = vec![[b' '; W]; H];
    for e in &events {
        let x = (e.time_us as usize * (W - 1)) / t_max as usize;
        let y = H - 1 - (e.lba as usize * (H - 1)) / lba_max as usize;
        let c = match e.dir {
            IoDir::Read => b'.',
            IoDir::Write => b'#',
        };
        if grid[y][x] != b'#' {
            grid[y][x] = c;
        }
    }
    println!("  LBA x time  ('.' read, '#' write):");
    for row in &grid {
        println!("  |{}|", std::str::from_utf8(row).unwrap());
    }
    println!();
}

fn main() {
    let sias = SiasDb::open(StorageConfig::ssd().with_pool_frames(256));
    run(&sias, sias.stack());
    let si = SiDb::open(StorageConfig::ssd().with_pool_frames(256));
    run(&si, si.stack());
}
