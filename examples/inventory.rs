//! Inventory: the indexing scheme of §4.3 on an order-processing
//! workload.
//!
//! * Example 2 of the paper: price updates (non-key) never touch the
//!   index under SIAS, while the SI baseline inserts one fresh
//!   ⟨key, TID⟩ record per update;
//! * Example 1 of the paper: a *key-changing* update adds a second index
//!   record pointing to the same data item, and old snapshots still reach
//!   the old version through the old key.
//!
//! ```text
//! cargo run --example inventory
//! ```

use sias::common::Vid;
use sias::core::SiasDb;
use sias::si::SiDb;
use sias::storage::StorageConfig;
use sias::txn::MvccEngine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sias = SiasDb::open(StorageConfig::in_memory());
    let si = SiDb::open(StorageConfig::in_memory());

    let products_sias = sias.create_relation("products");
    let products_si = si.create_relation("products");

    // Load a catalogue of 1000 products on both engines.
    let t = sias.begin();
    let u = si.begin();
    for id in 1..=1000u64 {
        let row = format!("product {id}; price=100");
        sias.insert(&t, products_sias, id, row.as_bytes())?;
        si.insert(&u, products_si, id, row.as_bytes())?;
    }
    sias.commit(t)?;
    si.commit(u)?;

    let sias_rel = sias.relation_handle(products_sias)?;
    let si_rel = si.relation_handle(products_si)?;
    let (sias_before, si_before) = (sias_rel.index.len(), si_rel.index.len());
    println!("index records after load:   SIAS {sias_before:>6}   SI {si_before:>6}");

    // --- §4.3 Example 2: 10 rounds of price updates (non-key). ----------
    for round in 1..=10u32 {
        let t = sias.begin();
        let u = si.begin();
        for id in 1..=1000u64 {
            let row = format!("product {id}; price={}", 100 + round);
            sias.update(&t, products_sias, id, row.as_bytes())?;
            si.update(&u, products_si, id, row.as_bytes())?;
        }
        sias.commit(t)?;
        si.commit(u)?;
    }
    println!(
        "index records after 10k price updates:   SIAS {:>6} (+{})   SI {:>6} (+{})",
        sias_rel.index.len(),
        sias_rel.index.len() - sias_before,
        si_rel.index.len(),
        si_rel.index.len() - si_before,
    );
    assert_eq!(sias_rel.index.len(), sias_before, "SIAS: zero index maintenance");
    assert_eq!(si_rel.index.len(), si_before + 10_000, "SI: one record per version");

    // --- §4.3 Example 1: the product id (the key!) changes. --------------
    // Product 9 is re-labelled to id 2009, as in Figure 2 where the
    // indexed attribute changes from 9 to 10.
    let vid = Vid(sias_rel.index.lookup_one(9)?.expect("product 9"));
    let old_snapshot = sias.begin(); // still expects to find id 9
    let t = sias.begin();
    sias.update_item_with_key_change(&t, products_sias, vid, 9, 2009, b"product 2009; price=42")?;
    sias.commit(t)?;

    let fresh = sias.begin();
    let via_new = sias.get(&fresh, products_sias, 2009)?.expect("reachable via new key");
    println!(
        "\nfresh txn finds the item under its NEW key 2009: {:?}",
        std::str::from_utf8(&via_new)?
    );
    sias.commit(fresh)?;

    let via_old = sias.get(&old_snapshot, products_sias, 9)?.expect("old snapshot, old key");
    println!(
        "old snapshot still reaches it under key 9:        {:?}",
        std::str::from_utf8(&via_old)?
    );
    assert!(via_old.ends_with(b"price=110"));
    sias.commit(old_snapshot)?;

    // Both engines agree on the visible data for untouched products.
    let t = sias.begin();
    let u = si.begin();
    for id in [1u64, 500, 1000] {
        assert_eq!(sias.get(&t, products_sias, id)?, si.get(&u, products_si, id)?);
    }
    sias.commit(t)?;
    si.commit(u)?;
    println!("\nengines agree on all visible rows. ok.");
    Ok(())
}
