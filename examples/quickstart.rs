//! Quickstart: open a SIAS database, run transactions, inspect the
//! version chain the paper's Figure 1 describes.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use sias::core::chain::collect_chain;
use sias::core::SiasDb;
use sias::storage::StorageConfig;
use sias::txn::MvccEngine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An in-memory stack (zero-latency device) keeps the example instant;
    // swap in `StorageConfig::ssd_raid(2)` to run on the Flash model.
    let db = SiasDb::open(StorageConfig::in_memory());
    let rel = db.create_relation("items");

    // --- The Figure 1 history: T1 creates X, T2 and T3 update it. -----
    let t1 = db.begin();
    let vid = db.insert_item(&t1, rel, b"X0: created by T1")?;
    db.commit(t1)?;

    let t2 = db.begin();
    db.update_item(&t2, rel, vid, b"X1: updated by T2")?;
    db.commit(t2)?;

    let t3 = db.begin();
    db.update_item(&t3, rel, vid, b"X2: updated by T3")?;
    db.commit(t3)?;

    // The data item is a singly-linked chain of versions; the VID map
    // points at the entrypoint (newest version).
    let handle = db.relation_handle(rel)?;
    let entry = handle.vidmap.get(vid).expect("entrypoint");
    println!("data item {vid} — entrypoint at {entry}");
    let chain = collect_chain(&db.stack().pool, rel, entry)?;
    for (tid, v) in &chain {
        println!(
            "  version @ {tid}: create=T{} pred={} payload={:?}",
            v.create,
            v.pred.map_or("NULL".to_string(), |p| p.to_string()),
            std::str::from_utf8(&v.payload).unwrap()
        );
    }
    assert_eq!(chain.len(), 3);

    // --- Snapshot isolation in action. ---------------------------------
    let reader = db.begin(); // snapshot: sees X2
    let writer = db.begin();
    db.update_item(&writer, rel, vid, b"X3: updated by T4")?;
    db.commit(writer)?;

    let seen = db.read_item(&reader, rel, vid)?.unwrap();
    println!("\nreader (older snapshot) sees: {:?}", std::str::from_utf8(&seen).unwrap());
    assert_eq!(&seen[..2], b"X2");
    db.commit(reader)?;

    let fresh = db.begin();
    let seen = db.read_item(&fresh, rel, vid)?.unwrap();
    println!("fresh transaction sees:       {:?}", std::str::from_utf8(&seen).unwrap());
    assert_eq!(&seen[..2], b"X3");
    db.commit(fresh)?;

    // --- Key-addressed API + scan. --------------------------------------
    let t = db.begin();
    for k in 1..=5u64 {
        db.insert(&t, rel, k, format!("row {k}").as_bytes())?;
    }
    db.commit(t)?;
    let t = db.begin();
    let all = db.scan_all(&t, rel)?;
    println!("\nvisible rows by key: {:?}", all.iter().map(|(k, _)| *k).collect::<Vec<_>>());
    db.commit(t)?;

    // --- Garbage collection (§6). ---------------------------------------
    let stats = db.vacuum_all()?;
    println!("\nvacuum: {stats:?}");

    // --- Observability (sias-obs). ---------------------------------------
    // Everything above reported into the engine's metrics registry: the
    // buffer pool and WAL (storage.*), engine operations and chain-walk
    // depth (core.*), GC (core.gc.*), and transaction outcomes (txn.*).
    // One snapshot serializes to JSON and Prometheus text.
    let snapshot = db.metrics_snapshot();
    println!("\n=== metrics (JSON) ===\n{}", snapshot.to_json());
    println!("\n=== metrics (Prometheus) ===\n{}", snapshot.to_prometheus());

    println!("ok.");
    Ok(())
}
