//! Serializable Snapshot Isolation (optional extension, paper §2
//! references [Cahill et al. 2008] / [Ports & Grittner 2012]): with
//! `set_serializable()`, both engines upgrade from SI to serializable
//! behaviour — write skew becomes impossible; plain SI still permits it.

use sias::common::SiasError;
use sias::core::SiasDb;
use sias::si::SiDb;
use sias::storage::StorageConfig;
use sias::txn::MvccEngine;

fn read_i64<E: MvccEngine + ?Sized>(
    e: &E,
    t: &sias::txn::Txn,
    rel: sias::common::RelId,
    k: u64,
) -> i64 {
    i64::from_le_bytes(e.get(t, rel, k).unwrap().unwrap().as_ref().try_into().unwrap())
}

/// The classic write-skew history: both transactions read x and y, then
/// each debits a different one. Returns the commit results.
fn write_skew<E: MvccEngine>(engine: &E) -> (Result<(), SiasError>, Result<(), SiasError>) {
    let rel = engine.create_relation("skew");
    let t = engine.begin();
    engine.insert(&t, rel, 0, &60i64.to_le_bytes()).unwrap(); // x
    engine.insert(&t, rel, 1, &60i64.to_le_bytes()).unwrap(); // y
    engine.commit(t).unwrap();

    let ta = engine.begin();
    let tb = engine.begin();
    // Both check the constraint x + y - 80 >= 0 on their snapshots.
    let sum_a = read_i64(engine, &ta, rel, 0) + read_i64(engine, &ta, rel, 1);
    let sum_b = read_i64(engine, &tb, rel, 0) + read_i64(engine, &tb, rel, 1);
    assert!(sum_a - 80 >= 0 && sum_b - 80 >= 0);
    // Disjoint writes: ta debits x, tb debits y.
    let ra = engine.update(&ta, rel, 0, &(60i64 - 80).to_le_bytes());
    let rb = engine.update(&tb, rel, 1, &(60i64 - 80).to_le_bytes());
    let ca = match ra {
        Ok(()) => engine.commit(ta),
        Err(e) => {
            engine.abort(ta);
            Err(e)
        }
    };
    let cb = match rb {
        Ok(()) => engine.commit(tb),
        Err(e) => {
            engine.abort(tb);
            Err(e)
        }
    };
    (ca, cb)
}

#[test]
fn plain_si_permits_write_skew_on_both_engines() {
    let sias = SiasDb::open(StorageConfig::in_memory());
    let (a, b) = write_skew(&sias);
    assert!(a.is_ok() && b.is_ok(), "SI must allow the anomaly: {a:?} {b:?}");

    let si = SiDb::open(StorageConfig::in_memory());
    let (a, b) = write_skew(&si);
    assert!(a.is_ok() && b.is_ok());
}

#[test]
fn ssi_prevents_write_skew_on_both_engines() {
    let sias = SiasDb::open(StorageConfig::in_memory());
    sias.txm().set_serializable();
    let (a, b) = write_skew(&sias);
    assert!(a.is_err() || b.is_err(), "SSI must abort at least one of the skewing transactions");
    assert!(a.is_ok() || b.is_ok(), "but not spuriously both in this history");
    // The constraint survives.
    let rel = sias.relation("skew").unwrap();
    let t = sias.begin();
    let total = read_i64(&sias, &t, rel, 0) + read_i64(&sias, &t, rel, 1);
    sias.commit(t).unwrap();
    assert!(total - 80 >= 0 - 80, "sanity");
    assert!(total >= 20, "one debit at most: x+y = {total}");

    let si = SiDb::open(StorageConfig::in_memory());
    si.txm().set_serializable();
    let (a, b) = write_skew(&si);
    assert!(a.is_err() || b.is_err());
}

#[test]
fn ssi_failure_reports_serialization_error() {
    let db = SiasDb::open(StorageConfig::in_memory());
    db.txm().set_serializable();
    let (a, b) = write_skew(&db);
    let err = a.err().or(b.err()).expect("one must fail");
    assert!(
        matches!(err, SiasError::SerializationFailure(_)),
        "expected a serialization failure, got {err:?}"
    );
}

#[test]
fn ssi_allows_serial_and_read_only_work() {
    let db = SiasDb::open(StorageConfig::in_memory());
    db.txm().set_serializable();
    let rel = db.create_relation("t");
    // Serial read-modify-write cycles never abort.
    let t = db.begin();
    db.insert(&t, rel, 1, &0u64.to_le_bytes()).unwrap();
    db.commit(t).unwrap();
    for i in 1..=50u64 {
        let t = db.begin();
        let v =
            u64::from_le_bytes(db.get(&t, rel, 1).unwrap().unwrap().as_ref().try_into().unwrap());
        db.update(&t, rel, 1, &(v + 1).to_le_bytes()).unwrap();
        db.commit(t).unwrap();
        let t = db.begin();
        assert_eq!(
            u64::from_le_bytes(db.get(&t, rel, 1).unwrap().unwrap().as_ref().try_into().unwrap()),
            i
        );
        db.commit(t).unwrap();
    }
    // Concurrent read-only transactions never abort either.
    let r1 = db.begin();
    let r2 = db.begin();
    assert!(db.get(&r1, rel, 1).unwrap().is_some());
    assert!(db.get(&r2, rel, 1).unwrap().is_some());
    db.commit(r1).unwrap();
    db.commit(r2).unwrap();
}

#[test]
fn ssi_under_concurrent_stress_preserves_a_read_constraint() {
    // Threads maintain "sum of the two accounts >= 0" by checking before
    // debiting — exactly the pattern SI breaks. Under SSI the constraint
    // must hold at the end regardless of interleaving.
    use std::sync::Arc;
    let db = Arc::new(SiasDb::open(StorageConfig::in_memory()));
    db.txm().set_serializable();
    let rel = db.create_relation("t");
    let t = db.begin();
    db.insert(&t, rel, 0, &100i64.to_le_bytes()).unwrap();
    db.insert(&t, rel, 1, &100i64.to_le_bytes()).unwrap();
    db.commit(t).unwrap();
    let mut handles = Vec::new();
    for thread in 0..4u64 {
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            for i in 0..50u64 {
                let target = (thread + i) % 2;
                let t = db.begin();
                let ok = (|| -> Result<(), SiasError> {
                    let x = read_i64(db.as_ref(), &t, rel, 0);
                    let y = read_i64(db.as_ref(), &t, rel, 1);
                    if x + y - 30 < 0 {
                        return Ok(()); // constraint would break: skip
                    }
                    let cur = if target == 0 { x } else { y };
                    db.update(&t, rel, target, &(cur - 30).to_le_bytes())?;
                    Ok(())
                })();
                match ok {
                    Ok(()) => {
                        let _ = db.commit(t);
                    }
                    Err(_) => db.abort(t),
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let t = db.begin();
    let total = read_i64(db.as_ref(), &t, rel, 0) + read_i64(db.as_ref(), &t, rel, 1);
    db.commit(t).unwrap();
    assert!(total >= 0, "SSI must preserve the read-checked constraint, got {total}");
}
