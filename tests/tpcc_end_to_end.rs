//! End-to-end TPC-C runs across storage configurations: the whole stack —
//! engine, buffer pool, device model, WAL, driver — exercised together,
//! with the paper's headline claims asserted in miniature.

use sias::core::{FlushPolicy, SiasDb};
use sias::si::SiDb;
use sias::storage::StorageConfig;
use sias::txn::MvccEngine;
use sias::workload::{check_consistency, load, run_benchmark, DriverConfig, TpccConfig};

fn small_driver() -> DriverConfig {
    let mut d = DriverConfig::for_warehouses(4);
    d.duration_secs = 30;
    d.warmup_secs = 5;
    d.think_scale = 0.05; // compressed emulated users: fast but still paced
    d
}

#[test]
fn tpcc_on_ssd_sias_beats_si_on_writes() {
    let cfg = TpccConfig::scaled(4);
    let storage = StorageConfig::ssd().with_pool_frames(512);

    let sias = SiasDb::open_with_policy(storage.clone(), FlushPolicy::T2);
    let tables = load(&sias, &cfg).unwrap();
    sias.maintenance(true);
    sias.stack().data.reset_stats();
    let res_sias =
        run_benchmark(&sias, &tables, &cfg, &small_driver(), &sias.stack().clock).unwrap();
    let writes_sias = sias.stack().data.stats().host_write_pages;
    assert!(check_consistency(&sias, &tables, &cfg).unwrap().is_empty());

    let si = SiDb::open(storage);
    let tables = load(&si, &cfg).unwrap();
    si.maintenance(true);
    si.stack().data.reset_stats();
    let res_si = run_benchmark(&si, &tables, &cfg, &small_driver(), &si.stack().clock).unwrap();
    let writes_si = si.stack().data.stats().host_write_pages;
    assert!(check_consistency(&si, &tables, &cfg).unwrap().is_empty());

    assert!(res_sias.new_order_commits > 0 && res_si.new_order_commits > 0);
    // The paper's claim (iii): significant write reduction. At miniature
    // scale we require at least 2×; the full experiment shows ~20–30×.
    assert!(writes_sias * 2 <= writes_si, "SIAS wrote {writes_sias} pages, SI wrote {writes_si}");
    // Claim (ii): response times no worse.
    assert!(res_sias.avg_response_s <= res_si.avg_response_s * 1.5);
}

#[test]
fn tpcc_on_hdd_sias_responds_faster() {
    let cfg = TpccConfig::scaled(6);
    let storage = StorageConfig::hdd().with_pool_frames(512);

    let sias = SiasDb::open(storage.clone());
    let tables = load(&sias, &cfg).unwrap();
    sias.maintenance(true);
    let res_sias =
        run_benchmark(&sias, &tables, &cfg, &small_driver(), &sias.stack().clock).unwrap();

    let si = SiDb::open(storage);
    let tables = load(&si, &cfg).unwrap();
    si.maintenance(true);
    let res_si = run_benchmark(&si, &tables, &cfg, &small_driver(), &si.stack().clock).unwrap();

    assert!(res_sias.new_order_commits > 0 && res_si.new_order_commits > 0);
    assert!(
        res_sias.avg_response_s < res_si.avg_response_s,
        "sias {:.3}s vs si {:.3}s",
        res_sias.avg_response_s,
        res_si.avg_response_s
    );
    assert!(res_sias.notpm >= res_si.notpm * 0.9, "sias must not lose throughput");
}

#[test]
fn tpcc_on_raid_consistent_across_widths() {
    let cfg = TpccConfig::scaled(2);
    for width in [1usize, 2, 6] {
        let storage = StorageConfig::ssd_raid(width).with_pool_frames(512);
        let db = SiasDb::open(storage);
        let tables = load(&db, &cfg).unwrap();
        let mut dcfg = small_driver();
        dcfg.duration_secs = 10;
        let res = run_benchmark(&db, &tables, &cfg, &dcfg, &db.stack().clock).unwrap();
        assert!(res.new_order_commits > 0, "raid{width}");
        let v = check_consistency(&db, &tables, &cfg).unwrap();
        assert!(v.is_empty(), "raid{width}: {v:?}");
    }
}

#[test]
fn tpcc_survives_vacuum_between_intervals() {
    let cfg = TpccConfig::scaled(2);
    let db = SiasDb::open(StorageConfig::ssd().with_pool_frames(512));
    let tables = load(&db, &cfg).unwrap();
    let mut dcfg = small_driver();
    dcfg.duration_secs = 10;
    for _ in 0..3 {
        run_benchmark(&db, &tables, &cfg, &dcfg, &db.stack().clock).unwrap();
        let gc = db.vacuum_all().unwrap();
        let v = check_consistency(&db, &tables, &cfg).unwrap();
        assert!(v.is_empty(), "{v:?}");
        // Churn must actually reclaim something by the time versions age.
        let _ = gc;
    }
    // After heavy update traffic + vacuum, space is bounded: re-running
    // another interval reuses reclaimed pages.
    let handles = db.relation_handles();
    let free: usize = handles.iter().map(|h| h.append.free_blocks()).sum();
    assert!(free > 0, "vacuum must have recycled pages");
}

#[test]
fn tpcc_deterministic_across_identical_runs() {
    let run = || {
        let cfg = TpccConfig::scaled(2);
        let db = SiasDb::open(StorageConfig::ssd().with_pool_frames(512));
        let tables = load(&db, &cfg).unwrap();
        let mut dcfg = small_driver();
        dcfg.duration_secs = 10;
        let res = run_benchmark(&db, &tables, &cfg, &dcfg, &db.stack().clock).unwrap();
        (res.new_order_commits, res.commits, db.stack().data.stats().host_write_pages)
    };
    assert_eq!(run(), run(), "virtual-time runs must be bit-deterministic");
}
