//! Multi-core stress: 8 OS threads of contended read-modify-write
//! transactions over one shared SIAS engine, with the merged history fed
//! to the black-box SI-anomaly checker.
//!
//! This is the integration-level proof of the concurrent hot paths
//! working *together*: the sharded buffer pool serves pins from all
//! threads, committers ride the leader/follower WAL group commit, and
//! VID-map entry/update is CAS-only — and none of it may cost isolation.
//! The checker sees only what clients observed (tagged reads/writes and
//! outcomes) plus the engine's own version chains, so any dirty write,
//! aborted read, intermediate read, or lost update that slips through
//! the concurrency machinery fails the test.

use sias_core::SiasDb;
use sias_storage::{StorageConfig, WalConfig};
use sias_txn::MvccEngine;
use sias_workload::threaded::{drive_threaded, fill_sias_version_order, ThreadedConfig};
use sias_workload::{check_anomalies, check_serializability, History};

fn stress(seed: u64, wal: WalConfig) -> (History, u64, u64) {
    let db = SiasDb::open(StorageConfig::in_memory().with_wal_config(wal));
    let cfg = ThreadedConfig {
        threads: 8,
        txns_per_thread: 40,
        keys: 24, // small key space: heavy write-write contention
        ops_per_txn: 5,
        update_pct: 70,
        abort_ppm: 30_000,
        seed,
        serializable: false,
        constraint_pairs: false,
    };
    let mut run = drive_threaded(&db, &cfg);
    fill_sias_version_order(&db, &mut run.history);
    (run.history, run.committed, run.conflicts)
}

#[test]
fn eight_thread_contended_history_is_anomaly_free() {
    let (history, committed, conflicts) =
        stress(0xC0FFEE, WalConfig { group_timeout_ticks: 32, max_batch: 32, force_sleep_us: 0 });
    assert_eq!(history.txns.len(), 1 + 8 * 40, "every transaction is in the merged history");
    assert!(committed > 20, "contended run still commits work: {committed}");
    assert!(conflicts > 0, "24 keys × 8 threads must produce first-updater-wins conflicts");
    assert!(!history.version_order.is_empty(), "chain walk yielded a version order");
    let violations = check_anomalies(&history);
    assert!(violations.is_empty(), "SI anomalies under concurrency: {violations:?}");
}

#[test]
fn group_commit_with_real_force_latency_stays_anomaly_free() {
    // A real (slept) force latency widens the window in which followers
    // pile onto the leader's batch — the exact interleaving the group
    // commit protocol must get right. Durability ordering bugs (ack
    // before force, reordered LSNs) surface as checker violations or as
    // scan_device mismatches in the WAL's own tests; here we assert the
    // client-visible history stays clean.
    let (history, committed, _) =
        stress(7, WalConfig { group_timeout_ticks: 64, max_batch: 16, force_sleep_us: 100 });
    assert!(committed > 20);
    let violations = check_anomalies(&history);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn batched_scan_matches_scalar_after_contended_run() {
    // The relation left behind by a contended multi-threaded run is the
    // adversarial input for the batched traversal engine: chains of
    // mixed depth, aborted heads from first-updater-wins losers and
    // abort_ppm rollbacks, and tombstone residue. After the anomaly
    // checker certifies the history, every scan engine must agree
    // byte-for-byte on what a fresh snapshot sees.
    let db = SiasDb::open(StorageConfig::in_memory());
    let cfg = ThreadedConfig {
        threads: 8,
        txns_per_thread: 40,
        keys: 24,
        ops_per_txn: 5,
        update_pct: 70,
        abort_ppm: 30_000,
        seed: 0xBA7C4,
        serializable: false,
        constraint_pairs: false,
    };
    let mut run = drive_threaded(&db, &cfg);
    fill_sias_version_order(&db, &mut run.history);
    let violations = check_anomalies(&run.history);
    assert!(violations.is_empty(), "{violations:?}");

    let rel = db.create_relation("threaded"); // resolves the existing relation
    let reader = db.begin();
    let serial = db.scan_vidmap(&reader, rel).unwrap();
    assert!(!serial.is_empty(), "contended run left visible rows");
    assert_eq!(db.scan_vidmap_batched(&reader, rel).unwrap(), serial, "batched");
    for threads in [2, 4, 8] {
        assert_eq!(
            db.scan_vidmap_parallel(&reader, rel, threads).unwrap(),
            serial,
            "parallel({threads})"
        );
        assert_eq!(
            db.scan_vidmap_parallel_scalar(&reader, rel, threads).unwrap(),
            serial,
            "parallel_scalar({threads})"
        );
    }
    db.commit(reader).unwrap();
}

#[test]
fn eight_thread_ssi_constraint_pairs_admit_no_g2() {
    // The serializability gate under real concurrency: 8 threads in
    // constraint-pair mode hammer zipfian-distributed key pairs — read
    // both halves, write one — which is exactly the access shape that
    // produces write skew under plain SI. With the engine upgraded to
    // SSI, the admitted (committed) history must contain no dependency
    // cycle at all: zero G2, zero G1c, on top of the usual SI anomaly
    // conditions. Pivot aborts are the mechanism, so the run must also
    // show the engine actually exercising it on this workload.
    let db = SiasDb::open(StorageConfig::in_memory());
    let cfg = ThreadedConfig {
        threads: 8,
        txns_per_thread: 40,
        keys: 24,
        ops_per_txn: 5,
        update_pct: 70,
        abort_ppm: 0, // no client aborts: every retryable failure is the engine's call
        seed: 0x551C0DE,
        serializable: true,
        constraint_pairs: true,
    };
    let mut run = drive_threaded(&db, &cfg);
    fill_sias_version_order(&db, &mut run.history);
    assert!(run.committed > 20, "SSI run still commits work: {}", run.committed);
    assert!(
        run.serialization_aborts > 0,
        "zipfian constraint pairs must trip pivot aborts under SSI"
    );
    let violations = check_anomalies(&run.history);
    assert!(violations.is_empty(), "SI anomalies under SSI stress: {violations:?}");
    let cycles = check_serializability(&run.history);
    assert!(cycles.is_empty(), "SSI admitted a dependency cycle: {cycles:?}");
}
