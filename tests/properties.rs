//! Property-based tests (proptest) over core invariants:
//!
//! * serial histories on either engine match a `BTreeMap` model;
//! * SIAS chains are well-formed after arbitrary histories and vacuum;
//! * the VID map survives persistence round-trips for arbitrary contents.

use std::collections::BTreeMap;

use proptest::prelude::*;
use sias::common::{Tid, Vid};
use sias::core::chain::collect_chain;
use sias::core::{SiasDb, VidMap};
use sias::si::SiDb;
use sias::storage::StorageConfig;
use sias::txn::MvccEngine;

#[derive(Clone, Debug)]
enum Op {
    Insert(u8, Vec<u8>),
    Update(u8, Vec<u8>),
    Delete(u8),
    AbortedUpdate(u8, Vec<u8>),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(k, v)| Op::Insert(k, v)),
        (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(k, v)| Op::Update(k, v)),
        any::<u8>().prop_map(Op::Delete),
        (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(k, v)| Op::AbortedUpdate(k, v)),
    ]
}

/// Applies ops serially (one transaction each) to an engine and the
/// model, keeping them in lockstep.
fn run_against_model<E: MvccEngine>(engine: &E, ops: &[Op]) -> BTreeMap<u64, Vec<u8>> {
    let rel = engine.create_relation("t");
    let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    for op in ops {
        match op {
            Op::Insert(k, v) => {
                let t = engine.begin();
                let r = engine.insert(&t, rel, *k as u64, v);
                if let std::collections::btree_map::Entry::Vacant(slot) = model.entry(*k as u64) {
                    r.unwrap();
                    engine.commit(t).unwrap();
                    slot.insert(v.clone());
                } else {
                    assert!(r.is_err(), "duplicate insert must fail");
                    engine.abort(t);
                }
            }
            Op::Update(k, v) => {
                let t = engine.begin();
                let r = engine.update(&t, rel, *k as u64, v);
                if let std::collections::btree_map::Entry::Occupied(mut slot) =
                    model.entry(*k as u64)
                {
                    r.unwrap();
                    engine.commit(t).unwrap();
                    slot.insert(v.clone());
                } else {
                    assert!(r.is_err(), "update of missing key must fail");
                    engine.abort(t);
                }
            }
            Op::Delete(k) => {
                let t = engine.begin();
                let r = engine.delete(&t, rel, *k as u64);
                if model.remove(&(*k as u64)).is_some() {
                    r.unwrap();
                    engine.commit(t).unwrap();
                } else {
                    assert!(r.is_err(), "delete of missing key must fail");
                    engine.abort(t);
                }
            }
            Op::AbortedUpdate(k, v) => {
                let t = engine.begin();
                let _ = engine.update(&t, rel, *k as u64, v);
                engine.abort(t); // model unchanged
            }
        }
    }
    // Engine state must equal the model.
    let t = engine.begin();
    let state: BTreeMap<u64, Vec<u8>> =
        engine.scan_all(&t, rel).unwrap().into_iter().map(|(k, v)| (k, v.to_vec())).collect();
    engine.commit(t).unwrap();
    assert_eq!(state, model);
    model
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn sias_matches_model(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let db = SiasDb::open(StorageConfig::in_memory());
        run_against_model(&db, &ops);
    }

    #[test]
    fn si_matches_model(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let db = SiDb::open(StorageConfig::in_memory());
        run_against_model(&db, &ops);
    }

    #[test]
    fn sias_matches_model_after_vacuum(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let db = SiasDb::open(StorageConfig::in_memory());
        let model = run_against_model(&db, &ops);
        db.vacuum_all().unwrap();
        let rel = db.relation("t").unwrap();
        let t = db.begin();
        let state: BTreeMap<u64, Vec<u8>> = db
            .scan_all(&t, rel)
            .unwrap()
            .into_iter()
            .map(|(k, v)| (k, v.to_vec()))
            .collect();
        db.commit(t).unwrap();
        prop_assert_eq!(state, model);
    }

    #[test]
    fn sias_chains_are_well_formed(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let db = SiasDb::open(StorageConfig::in_memory());
        run_against_model(&db, &ops);
        let rel = db.relation("t").unwrap();
        let handle = db.relation_handle(rel).unwrap();
        let pool = &db.stack().pool;
        let mut entries = Vec::new();
        handle.vidmap.for_each(|vid, tid| entries.push((vid, tid)));
        for (vid, entry) in entries {
            let chain = collect_chain(pool, rel, entry).unwrap();
            prop_assert!(!chain.is_empty());
            // Same VID on every version; strictly decreasing create order;
            // exactly the last version has no predecessor.
            for (i, (_, v)) in chain.iter().enumerate() {
                prop_assert_eq!(v.vid, vid);
                prop_assert_eq!(v.pred.is_none(), i == chain.len() - 1);
                if i > 0 {
                    prop_assert!(chain[i - 1].1.create > v.create, "chain timestamps must decrease");
                    // Implicit invalidation: successor records this
                    // version's create timestamp.
                    prop_assert_eq!(chain[i - 1].1.pred_create, v.create);
                }
            }
        }
    }

    #[test]
    fn vidmap_persistence_roundtrip(slots in proptest::collection::vec(
        proptest::option::of((0u32..10_000, 0u16..1024)), 1..2000
    )) {
        let map = VidMap::new();
        for slot in &slots {
            let vid = map.allocate_vid();
            if let Some((block, s)) = slot {
                map.set(vid, Tid::new(*block, *s));
            }
        }
        let dev = std::sync::Arc::new(sias::storage::device::MemDevice::standalone(1 << 16));
        let space = std::sync::Arc::new(sias::storage::Tablespace::new(1 << 16));
        let pool = sias::storage::BufferPool::new(64, dev, space);
        map.save_to(&pool, sias::common::RelId(42)).unwrap();
        let restored = VidMap::load_from(&pool, sias::common::RelId(42)).unwrap();
        prop_assert_eq!(restored.vid_bound(), map.vid_bound());
        for i in 0..slots.len() as u64 {
            prop_assert_eq!(restored.get(Vid(i)), map.get(Vid(i)));
        }
    }
}

#[test]
fn page_items_roundtrip_property() {
    // A lightweight hand-rolled property: random item sets fit-or-reject
    // consistently and survive byte round-trips.
    use rand::prelude::*;
    use sias::storage::Page;
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..50 {
        let mut p = Page::new();
        let mut stored: Vec<Vec<u8>> = Vec::new();
        loop {
            let item = vec![rng.random::<u8>(); rng.random_range(0..700)];
            match p.add_item(&item).unwrap() {
                Some(_) => stored.push(item),
                None => break,
            }
        }
        let q = Page::from_bytes(p.as_bytes());
        for (i, item) in stored.iter().enumerate() {
            assert_eq!(q.item(i as u16).unwrap(), &item[..]);
        }
    }
}
