//! Differential testing: SIAS and the SI baseline must expose *identical*
//! transactional semantics — the paper changes the physical organization,
//! never the visible behaviour. Every test here runs the same logical
//! history against both engines and requires byte-identical visible
//! state.

use rand::prelude::*;
use sias::core::SiasDb;
use sias::si::SiDb;
use sias::storage::StorageConfig;
use sias::txn::MvccEngine;

/// A logical operation applied to both engines.
#[derive(Clone, Debug)]
enum Op {
    Insert(u64, Vec<u8>),
    Update(u64, Vec<u8>),
    Delete(u64),
}

fn random_history(seed: u64, n: usize) -> Vec<Vec<Op>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live: Vec<u64> = Vec::new();
    let mut next_key = 0u64;
    let mut txns = Vec::new();
    for _ in 0..n {
        let ops = rng.random_range(1..=6);
        let mut txn = Vec::new();
        for _ in 0..ops {
            let choice = rng.random_range(0..10);
            if choice < 4 || live.is_empty() {
                let key = next_key;
                next_key += 1;
                let val = vec![rng.random::<u8>(); rng.random_range(1..200)];
                live.push(key);
                txn.push(Op::Insert(key, val));
            } else if choice < 8 {
                let key = live[rng.random_range(0..live.len())];
                let val = vec![rng.random::<u8>(); rng.random_range(1..200)];
                txn.push(Op::Update(key, val));
            } else {
                let idx = rng.random_range(0..live.len());
                let key = live.swap_remove(idx);
                txn.push(Op::Delete(key));
            }
        }
        txns.push(txn);
    }
    txns
}

/// Applies one transaction; duplicate deletes/updates of dead keys are
/// tolerated identically by both engines (KeyNotFound).
fn apply<E: MvccEngine>(engine: &E, rel: sias::common::RelId, txn: &[Op], commit: bool) {
    let t = engine.begin();
    for op in txn {
        match op {
            Op::Insert(k, v) => {
                let _ = engine.insert(&t, rel, *k, v);
            }
            Op::Update(k, v) => {
                let _ = engine.update(&t, rel, *k, v);
            }
            Op::Delete(k) => {
                let _ = engine.delete(&t, rel, *k);
            }
        }
    }
    if commit {
        engine.commit(t).unwrap();
    } else {
        engine.abort(t);
    }
}

fn visible_state<E: MvccEngine>(engine: &E, rel: sias::common::RelId) -> Vec<(u64, Vec<u8>)> {
    let t = engine.begin();
    let out = engine.scan_all(&t, rel).unwrap().into_iter().map(|(k, v)| (k, v.to_vec())).collect();
    engine.commit(t).unwrap();
    out
}

#[test]
fn identical_state_after_random_histories() {
    for seed in [1u64, 7, 42, 1234] {
        let sias = SiasDb::open(StorageConfig::in_memory());
        let si = SiDb::open(StorageConfig::in_memory());
        let rel_a = sias.create_relation("t");
        let rel_b = si.create_relation("t");
        let history = random_history(seed, 60);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        for txn in &history {
            let commit = rng.random_range(0..10) < 8; // 20 % aborts
            apply(&sias, rel_a, txn, commit);
            apply(&si, rel_b, txn, commit);
        }
        assert_eq!(
            visible_state(&sias, rel_a),
            visible_state(&si, rel_b),
            "seed {seed}: engines diverged"
        );
    }
}

#[test]
fn identical_state_survives_sias_vacuum() {
    let sias = SiasDb::open(StorageConfig::in_memory());
    let si = SiDb::open(StorageConfig::in_memory());
    let rel_a = sias.create_relation("t");
    let rel_b = si.create_relation("t");
    let history = random_history(99, 80);
    for (i, txn) in history.iter().enumerate() {
        apply(&sias, rel_a, txn, true);
        apply(&si, rel_b, txn, true);
        if i % 20 == 19 {
            sias.vacuum_all().unwrap();
            assert_eq!(visible_state(&sias, rel_a), visible_state(&si, rel_b), "after txn {i}");
        }
    }
}

#[test]
fn snapshot_reads_agree_mid_history() {
    // Open snapshots on both engines at the same logical point; verify
    // they agree with each other both immediately and after more writes.
    let sias = SiasDb::open(StorageConfig::in_memory());
    let si = SiDb::open(StorageConfig::in_memory());
    let rel_a = sias.create_relation("t");
    let rel_b = si.create_relation("t");
    for k in 0..50u64 {
        apply(&sias, rel_a, &[Op::Insert(k, vec![k as u8])], true);
        apply(&si, rel_b, &[Op::Insert(k, vec![k as u8])], true);
    }
    let snap_a = sias.begin();
    let snap_b = si.begin();
    // Future writes the snapshots must not see.
    for k in 0..50u64 {
        apply(&sias, rel_a, &[Op::Update(k, vec![0xFF])], true);
        apply(&si, rel_b, &[Op::Update(k, vec![0xFF])], true);
    }
    for k in (0..50u64).step_by(7) {
        let a = sias.get(&snap_a, rel_a, k).unwrap().map(|b| b.to_vec());
        let b = si.get(&snap_b, rel_b, k).unwrap().map(|b| b.to_vec());
        assert_eq!(a, b, "key {k}");
        assert_eq!(a, Some(vec![k as u8]), "snapshot sees pre-update value");
    }
    sias.commit(snap_a).unwrap();
    si.commit(snap_b).unwrap();
}

#[test]
fn both_engines_reject_the_same_errors() {
    let sias = SiasDb::open(StorageConfig::in_memory());
    let si = SiDb::open(StorageConfig::in_memory());
    let rel_a = sias.create_relation("t");
    let rel_b = si.create_relation("t");
    let t_a = sias.begin();
    let t_b = si.begin();
    // Update / delete of a missing key.
    assert!(sias.update(&t_a, rel_a, 9, b"x").is_err());
    assert!(si.update(&t_b, rel_b, 9, b"x").is_err());
    assert!(sias.delete(&t_a, rel_a, 9).is_err());
    assert!(si.delete(&t_b, rel_b, 9).is_err());
    // Duplicate insert.
    sias.insert(&t_a, rel_a, 1, b"a").unwrap();
    si.insert(&t_b, rel_b, 1, b"a").unwrap();
    assert!(sias.insert(&t_a, rel_a, 1, b"b").is_err());
    assert!(si.insert(&t_b, rel_b, 1, b"b").is_err());
    sias.commit(t_a).unwrap();
    si.commit(t_b).unwrap();
}
