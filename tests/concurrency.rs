//! Multi-threaded stress tests: real concurrency (not the deterministic
//! DES driver) against both engines, checking the invariants snapshot
//! isolation must uphold under contention.

use std::sync::Arc;

use sias::core::SiasDb;
use sias::si::SiDb;
use sias::storage::StorageConfig;
use sias::txn::MvccEngine;

/// Money-conservation under concurrent transfers: the classic SI
/// correctness probe. Any interleaving of transfers keeps the total
/// constant, and every snapshot observes a constant total.
fn transfer_stress<E: MvccEngine + 'static>(engine: Arc<E>) {
    const ACCOUNTS: u64 = 20;
    const INITIAL: i64 = 1000;
    let rel = engine.create_relation("accounts");
    let t = engine.begin();
    for a in 0..ACCOUNTS {
        engine.insert(&t, rel, a, &INITIAL.to_le_bytes()).unwrap();
    }
    engine.commit(t).unwrap();

    let read = |raw: &[u8]| i64::from_le_bytes(raw.try_into().expect("8-byte balance"));

    let mut handles = Vec::new();
    // 4 transfer threads.
    for tid in 0..4u64 {
        let engine = Arc::clone(&engine);
        handles.push(std::thread::spawn(move || {
            use rand::prelude::*;
            let mut rng = StdRng::seed_from_u64(tid);
            let mut committed = 0u32;
            for _ in 0..200 {
                let from = rng.random_range(0..ACCOUNTS);
                let mut to = rng.random_range(0..ACCOUNTS);
                if to == from {
                    to = (to + 1) % ACCOUNTS;
                }
                let amount = rng.random_range(1..50i64);
                let t = engine.begin();
                let result = (|| -> Result<(), sias::common::SiasError> {
                    let b_from = read(&engine.get(&t, rel, from)?.unwrap());
                    let b_to = read(&engine.get(&t, rel, to)?.unwrap());
                    engine.update(&t, rel, from, &(b_from - amount).to_le_bytes())?;
                    engine.update(&t, rel, to, &(b_to + amount).to_le_bytes())?;
                    Ok(())
                })();
                match result {
                    Ok(()) => {
                        engine.commit(t).unwrap();
                        committed += 1;
                    }
                    Err(_) => engine.abort(t),
                }
            }
            committed
        }));
    }
    // 2 auditor threads: every snapshot must see the invariant total.
    for _ in 0..2 {
        let engine = Arc::clone(&engine);
        handles.push(std::thread::spawn(move || {
            for _ in 0..100 {
                let t = engine.begin();
                let rows = engine.scan_all(&t, rel).unwrap();
                assert_eq!(rows.len() as u64, ACCOUNTS);
                let total: i64 = rows.iter().map(|(_, v)| read(v)).sum();
                assert_eq!(total, ACCOUNTS as i64 * INITIAL, "snapshot saw torn transfer");
                engine.commit(t).unwrap();
            }
            0u32
        }));
    }
    let committed: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(committed > 0, "some transfers must commit under contention");
    // Final state conserves money.
    let t = engine.begin();
    let total: i64 = engine.scan_all(&t, rel).unwrap().iter().map(|(_, v)| read(v)).sum();
    engine.commit(t).unwrap();
    assert_eq!(total, ACCOUNTS as i64 * INITIAL);
}

#[test]
fn sias_conserves_money_under_contention() {
    transfer_stress(Arc::new(SiasDb::open(StorageConfig::in_memory())));
}

#[test]
fn si_conserves_money_under_contention() {
    transfer_stress(Arc::new(SiDb::open(StorageConfig::in_memory())));
}

/// Lost updates are impossible: concurrent increments on one counter
/// serialize through first-updater-wins; every committed increment is
/// reflected in the final value.
fn no_lost_updates<E: MvccEngine + 'static>(engine: Arc<E>) {
    let rel = engine.create_relation("counter");
    let t = engine.begin();
    engine.insert(&t, rel, 1, &0u64.to_le_bytes()).unwrap();
    engine.commit(t).unwrap();
    let mut handles = Vec::new();
    for _ in 0..6 {
        let engine = Arc::clone(&engine);
        handles.push(std::thread::spawn(move || {
            let mut committed = 0u64;
            for _ in 0..150 {
                let t = engine.begin();
                let ok = (|| -> Result<(), sias::common::SiasError> {
                    let raw = engine.get(&t, rel, 1)?.unwrap();
                    let v = u64::from_le_bytes(raw.as_ref().try_into().unwrap());
                    engine.update(&t, rel, 1, &(v + 1).to_le_bytes())?;
                    Ok(())
                })();
                match ok {
                    Ok(()) => {
                        engine.commit(t).unwrap();
                        committed += 1;
                    }
                    Err(_) => engine.abort(t),
                }
            }
            committed
        }));
    }
    let committed: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let t = engine.begin();
    let raw = engine.get(&t, rel, 1).unwrap().unwrap();
    let v = u64::from_le_bytes(raw.as_ref().try_into().unwrap());
    engine.commit(t).unwrap();
    assert_eq!(v, committed, "every committed increment must be preserved");
    assert!(committed > 0);
}

#[test]
fn sias_has_no_lost_updates() {
    no_lost_updates(Arc::new(SiasDb::open(StorageConfig::in_memory())));
}

#[test]
fn si_has_no_lost_updates() {
    no_lost_updates(Arc::new(SiDb::open(StorageConfig::in_memory())));
}

/// Readers are never blocked by writers (the MVCC promise of §3): long
/// snapshots keep reading stable data while writers churn.
#[test]
fn sias_readers_run_against_writer_churn() {
    let db = Arc::new(SiasDb::open(StorageConfig::in_memory()));
    let rel = db.create_relation("t");
    let t = db.begin();
    for k in 0..100u64 {
        db.insert(&t, rel, k, &k.to_le_bytes()).unwrap();
    }
    db.commit(t).unwrap();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut round = 1u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let t = db.begin();
                for k in 0..100u64 {
                    db.update(&t, rel, k, &(round * 1000 + k).to_le_bytes()).unwrap();
                }
                db.commit(t).unwrap();
                round += 1;
            }
        })
    };
    for _ in 0..50 {
        let t = db.begin();
        let rows = db.scan_all(&t, rel).unwrap();
        assert_eq!(rows.len(), 100);
        // All rows come from ONE committed round (snapshot consistency).
        let rounds: std::collections::BTreeSet<u64> = rows
            .iter()
            .map(|(_, v)| u64::from_le_bytes(v.as_ref().try_into().unwrap()) / 1000)
            .collect();
        assert_eq!(rounds.len(), 1, "scan mixed versions from rounds {rounds:?}");
        db.commit(t).unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    writer.join().unwrap();
}
