//! Property-based equivalence of the scan engines: on arbitrary
//! histories — including aborted writers and tombstones — the batched
//! page-grouped scan, the parallel batched scan, and the parallel
//! scalar scan must all return exactly what the serial scalar
//! `scan_vidmap` returns, both for a fresh snapshot and for a reader
//! whose snapshot was taken mid-history (forcing chain walks past
//! invisible heads).

use proptest::prelude::*;
use sias::core::SiasDb;
use sias::storage::StorageConfig;
use sias::txn::MvccEngine;

#[derive(Clone, Debug)]
enum Op {
    Insert(u8, Vec<u8>),
    Update(u8, Vec<u8>),
    Delete(u8),
    AbortedUpdate(u8, Vec<u8>),
    AbortedDelete(u8),
}

fn payload() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..48)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), payload()).prop_map(|(k, v)| Op::Insert(k, v)),
        (any::<u8>(), payload()).prop_map(|(k, v)| Op::Update(k, v)),
        any::<u8>().prop_map(Op::Delete),
        (any::<u8>(), payload()).prop_map(|(k, v)| Op::AbortedUpdate(k, v)),
        any::<u8>().prop_map(Op::AbortedDelete),
    ]
}

/// Applies one op in its own transaction; invalid ops (duplicate
/// insert, update/delete of a missing key) abort harmlessly, and the
/// `Aborted*` variants roll back on purpose so their versions sit at
/// chain heads as invisible residue.
fn apply(db: &SiasDb, rel: sias::common::RelId, op: &Op) {
    let t = db.begin();
    let committed = match op {
        Op::Insert(k, v) => db.insert(&t, rel, *k as u64, v).is_ok(),
        Op::Update(k, v) => db.update(&t, rel, *k as u64, v).is_ok(),
        Op::Delete(k) => db.delete(&t, rel, *k as u64).is_ok(),
        Op::AbortedUpdate(k, v) => {
            let _ = db.update(&t, rel, *k as u64, v);
            false
        }
        Op::AbortedDelete(k) => {
            let _ = db.delete(&t, rel, *k as u64);
            false
        }
    };
    if committed {
        db.commit(t).unwrap();
    } else {
        db.abort(t);
    }
}

/// Asserts every scan engine agrees with the serial scalar walk for
/// this reader.
fn assert_scans_agree(db: &SiasDb, rel: sias::common::RelId, reader: &sias::txn::Txn) {
    let serial = db.scan_vidmap(reader, rel).unwrap();
    assert_eq!(db.scan_vidmap_batched(reader, rel).unwrap(), serial, "batched");
    for threads in [2, 3] {
        assert_eq!(
            db.scan_vidmap_parallel(reader, rel, threads).unwrap(),
            serial,
            "parallel({threads})"
        );
        assert_eq!(
            db.scan_vidmap_parallel_scalar(reader, rel, threads).unwrap(),
            serial,
            "parallel_scalar({threads})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn batched_scan_equals_scalar_on_random_histories(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        split in 0usize..120,
    ) {
        let db = SiasDb::open(StorageConfig::in_memory());
        let rel = db.create_relation("t");
        let split = split.min(ops.len());
        for op in &ops[..split] {
            apply(&db, rel, op);
        }
        // Mid-history reader: everything after `split` is invisible to
        // it, so its scans walk past newer chain heads.
        let mid_reader = db.begin();
        for op in &ops[split..] {
            apply(&db, rel, op);
        }
        let fresh_reader = db.begin();
        assert_scans_agree(&db, rel, &mid_reader);
        assert_scans_agree(&db, rel, &fresh_reader);
        db.commit(mid_reader).unwrap();
        db.commit(fresh_reader).unwrap();
    }
}
