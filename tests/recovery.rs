//! Recovery paths (§6 *Recovery*): the VID map can be reconstructed from
//! the tuple versions alone; the persisted map reloads at startup; WAL
//! records survive a force and describe the full history.

use sias::common::{RelId, Vid};
use sias::core::{SiasDb, VidMap};
use sias::storage::{StorageConfig, WalRecord};
use sias::txn::MvccEngine;

fn populated_db() -> (SiasDb, RelId) {
    let db = SiasDb::open(StorageConfig::in_memory());
    let rel = db.create_relation("t");
    let t = db.begin();
    for k in 0..300u64 {
        db.insert(&t, rel, k, format!("initial {k}").as_bytes()).unwrap();
    }
    db.commit(t).unwrap();
    for round in 0..4u32 {
        let t = db.begin();
        for k in (0..300u64).step_by(3) {
            db.update(&t, rel, k, format!("round {round} key {k}").as_bytes()).unwrap();
        }
        db.commit(t).unwrap();
    }
    // A few deletes and an aborted transaction for spice.
    let t = db.begin();
    for k in 290..300u64 {
        db.delete(&t, rel, k).unwrap();
    }
    db.commit(t).unwrap();
    let t = db.begin();
    db.update(&t, rel, 0, b"never committed").unwrap();
    db.abort(t);
    (db, rel)
}

/// The visible payload of every key, via a fresh snapshot.
fn visible(db: &SiasDb, rel: RelId) -> Vec<(u64, Vec<u8>)> {
    let t = db.begin();
    let v = db.scan_all(&t, rel).unwrap().into_iter().map(|(k, b)| (k, b.to_vec())).collect();
    db.commit(t).unwrap();
    v
}

#[test]
fn rebuilt_vidmap_resolves_to_the_same_visible_data() {
    let (db, rel) = populated_db();
    let before = visible(&db, rel);
    let rebuilt = db.rebuild_vidmap(rel).unwrap();
    // Swap-in simulation: read every item through the rebuilt map and
    // compare against the live engine's reads.
    let handle = db.relation_handle(rel).unwrap();
    let t = db.begin();
    let mut checked = 0;
    handle.vidmap.for_each(|vid, _| {
        let live = db.read_item(&t, rel, vid).unwrap();
        let rebuilt_entry = rebuilt.get(vid);
        match (live, rebuilt_entry) {
            (Some(payload), Some(entry)) => {
                let v = sias::core::chain::fetch_version(&db.stack().pool, rel, entry).unwrap();
                assert_eq!(v.payload, payload, "vid {vid}");
                checked += 1;
            }
            (None, Some(entry)) => {
                // Deleted items: the rebuilt entrypoint must be the
                // tombstone.
                let v = sias::core::chain::fetch_version(&db.stack().pool, rel, entry).unwrap();
                assert!(v.tombstone, "vid {vid}: expected tombstone entrypoint");
            }
            (live, rebuilt) => panic!("vid {vid}: live {live:?} rebuilt {rebuilt:?}"),
        }
    });
    db.commit(t).unwrap();
    assert!(checked >= 280, "only {checked} items checked");
    assert_eq!(visible(&db, rel), before, "recovery probing must not disturb state");
}

#[test]
fn shutdown_persists_vidmap_for_reload() {
    let (db, rel) = populated_db();
    db.shutdown().unwrap();
    let map_rel = RelId(rel.0 + 2);
    let restored = VidMap::load_from(&db.stack().pool, map_rel).unwrap();
    let handle = db.relation_handle(rel).unwrap();
    assert_eq!(restored.vid_bound(), handle.vidmap.vid_bound());
    let mut mismatches = 0;
    handle.vidmap.for_each(|vid, tid| {
        if restored.get(vid) != Some(tid) {
            mismatches += 1;
        }
    });
    assert_eq!(mismatches, 0);
    // Occupancy matches too (deleted-but-not-vacuumed items included).
    assert_eq!(restored.occupied(), handle.vidmap.occupied());
}

#[test]
fn wal_replay_reconstructs_transaction_outcomes() {
    let (db, _rel) = populated_db();
    db.shutdown().unwrap();
    let records = db.stack().wal.durable_records().unwrap();
    // Every Begin has exactly one matching Commit or Abort.
    use std::collections::HashMap;
    let mut outcomes: HashMap<u64, (bool, bool, bool)> = HashMap::new();
    for r in &records {
        match r {
            WalRecord::Begin(x) => outcomes.entry(x.0).or_default().0 = true,
            WalRecord::Commit(x) => outcomes.entry(x.0).or_default().1 = true,
            WalRecord::Abort(x) => outcomes.entry(x.0).or_default().2 = true,
            _ => {}
        }
    }
    assert!(!outcomes.is_empty());
    for (xid, (began, committed, aborted)) in outcomes {
        assert!(began, "xid {xid} finished without Begin");
        assert!(committed ^ aborted, "xid {xid}: committed={committed} aborted={aborted}");
    }
    // Inserts of committed transactions are replayable: count them.
    let inserts = records.iter().filter(|r| matches!(r, WalRecord::Insert { .. })).count();
    assert!(inserts >= 300 + 4 * 100 + 10, "wal must describe every version append");
}

#[test]
fn vidmap_rebuild_ignores_uncommitted_tail() {
    // A "crash" with an in-flight transaction: its versions are on pages
    // but its xid never committed; rebuild must skip them... note that
    // the rebuild treats in-progress as present-but-newest-wins only for
    // non-aborted xids, so we abort it explicitly (clog persistence is
    // assumed, as in PostgreSQL).
    let db = SiasDb::open(StorageConfig::in_memory());
    let rel = db.create_relation("t");
    let t = db.begin();
    db.insert(&t, rel, 1, b"committed v0").unwrap();
    db.insert(&t, rel, 2, b"single version").unwrap();
    db.commit(t).unwrap();
    // Deepen key 1's chain with two more committed versions.
    for round in 1..=2 {
        let t = db.begin();
        db.update(&t, rel, 1, format!("committed v{round}").as_bytes()).unwrap();
        db.commit(t).unwrap();
    }
    let t = db.begin();
    db.update(&t, rel, 1, b"in flight").unwrap();
    db.abort(t); // the crash resolution
    let rebuilt = db.rebuild_vidmap(rel).unwrap();
    let entry = rebuilt.get(Vid(0)).unwrap();
    let v = sias::core::chain::fetch_version(&db.stack().pool, rel, entry).unwrap();
    assert_eq!(v.payload.as_ref(), b"committed v2");

    // The live map still names the aborted tip (readers skip it via the
    // clog); the rebuild instead selected the committed head. The tip's
    // back-pointer must lead exactly there — that link is how the
    // rebuild walks past uncommitted work.
    let handle = db.relation_handle(rel).unwrap();
    let live_entry = handle.vidmap.get(Vid(0)).unwrap();
    assert_ne!(live_entry, entry, "live entrypoint is the aborted tip");
    let tip = sias::core::chain::fetch_version(&db.stack().pool, rel, live_entry).unwrap();
    assert_eq!(tip.payload.as_ref(), b"in flight");
    assert_eq!(tip.pred, Some(entry), "aborted tip back-points to the committed head");

    // And the surviving chain's back-pointers must be intact: each
    // version's pred names the next-older version's physical location
    // (with the matching creator stamp), terminating at the original
    // insert.
    let chain = sias::core::chain::collect_chain(&db.stack().pool, rel, entry).unwrap();
    assert_eq!(chain.len(), 3, "three committed versions of key 1 survive");
    let payloads: Vec<&[u8]> = chain.iter().map(|(_, v)| v.payload.as_ref()).collect();
    assert_eq!(payloads, [b"committed v2".as_ref(), b"committed v1", b"committed v0"]);
    for (i, (_, v)) in chain.iter().enumerate() {
        match chain.get(i + 1) {
            Some((older_tid, older)) => {
                assert_eq!(v.pred, Some(*older_tid), "version {i} back-pointer");
                assert_eq!(v.pred_create, older.create, "version {i} pred creator stamp");
                assert!(v.create > older.create, "chain must be newest-first");
            }
            None => {
                assert_eq!(v.pred, None, "oldest version terminates the chain");
            }
        }
    }

    // A single-version item's rebuilt entrypoint has no predecessor.
    let entry2 = rebuilt.get(Vid(1)).unwrap();
    let v2 = sias::core::chain::fetch_version(&db.stack().pool, rel, entry2).unwrap();
    assert_eq!(v2.payload.as_ref(), b"single version");
    assert_eq!(v2.pred, None);
}
