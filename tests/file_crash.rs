//! WAL crash test against a **real file**: the same fixed workload and
//! record-boundary sweep as `wal_crash.rs`, but the log lives in an
//! actual on-disk file (`FileDevice`), the pre-crash process state is
//! dropped, and the record stream is scanned back from a fresh reopen of
//! the file — exactly what a restart after a power cut would see.

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

use sias::core::{FlushPolicy, SiasDb};
use sias::storage::{Device, FileDevice, StorageConfig, Wal, WalRecord};
use sias::txn::{MvccEngine, TxnStatus};

const KEYS: u64 = 7;
const TXNS: u64 = 20;

/// What one workload transaction did, as the model sees it.
struct ModelTxn {
    xid: sias::common::Xid,
    writes: Vec<(u64, Vec<u8>)>,
    committed: bool,
}

/// Removes the backing files on drop, pass or fail.
struct Cleanup(Vec<PathBuf>);

impl Drop for Cleanup {
    fn drop(&mut self) {
        for p in &self.0 {
            let _ = std::fs::remove_file(p);
        }
    }
}

/// A unique data-file path in the system temp dir, plus its `.wal`
/// sibling (where the file-backed stack places the log).
fn temp_paths(tag: &str) -> (PathBuf, PathBuf, Cleanup) {
    let data =
        std::env::temp_dir().join(format!("sias-file-crash-{tag}-{}.dat", std::process::id()));
    let mut wal = data.clone().into_os_string();
    wal.push(".wal");
    let wal = PathBuf::from(wal);
    let _ = std::fs::remove_file(&data);
    let _ = std::fs::remove_file(&wal);
    let cleanup = Cleanup(vec![data.clone(), wal.clone()]);
    (data, wal, cleanup)
}

/// Runs the fixed workload: a setup transaction inserts every key, then
/// 20 serial transactions update two keys each; every fourth aborts.
fn run_fixed_workload(db: &SiasDb) -> (sias::common::RelId, Vec<ModelTxn>) {
    let rel = db.create_relation("t");
    let mut model = Vec::new();

    let t = db.begin();
    let mut writes = Vec::new();
    for k in 0..KEYS {
        let v = format!("init {k}").into_bytes();
        db.insert(&t, rel, k, &v).unwrap();
        writes.push((k, v));
    }
    let xid = t.xid;
    db.commit(t).unwrap();
    model.push(ModelTxn { xid, writes, committed: true });

    for i in 0..TXNS {
        let t = db.begin();
        let mut writes = Vec::new();
        for (slot, key) in [(i * 2) % KEYS, (i * 2 + 1) % KEYS].into_iter().enumerate() {
            let v = format!("txn {i} slot {slot}").into_bytes();
            db.update(&t, rel, key, &v).unwrap();
            writes.push((key, v));
        }
        let xid = t.xid;
        let committed = i % 4 != 3;
        if committed {
            db.commit(t).unwrap();
        } else {
            db.abort(t);
        }
        model.push(ModelTxn { xid, writes, committed });
    }
    (rel, model)
}

#[test]
fn every_wal_prefix_from_a_real_file_recovers_consistently() {
    let (data_path, wal_path, _cleanup) = temp_paths("sweep");
    let cfg = StorageConfig::file(&data_path)
        .with_pool_frames(256)
        .with_capacity_pages(1 << 14)
        .with_io_queue_depth(4);

    // Run the workload, force the log, remember the in-memory durable
    // view for cross-checking, then "crash" (drop every handle).
    let (model, in_memory_view) = {
        let db = SiasDb::open(cfg);
        let (_rel, model) = run_fixed_workload(&db);
        db.stack().wal.force().unwrap();
        let view = db.stack().wal.durable_records().unwrap();
        (model, view)
    };

    // Post-crash: reopen the WAL file cold and scan it. The stream off
    // the real file must equal what the dead process believed durable.
    let wal_dev = FileDevice::standalone(&wal_path, 1 << 22).expect("reopen wal file");
    let (records, _) = Wal::scan_device(&wal_dev);
    assert_eq!(records, in_memory_view, "file scan diverged from the durable view");
    assert!(records.len() > 60, "20 txns must leave a substantial log");

    // Commit-record position per xid.
    let mut commit_at: BTreeMap<u64, usize> = BTreeMap::new();
    for (i, r) in records.iter().enumerate() {
        if let WalRecord::Commit(x) = r {
            commit_at.insert(x.0, i);
        }
    }
    for m in &model {
        assert_eq!(m.committed, commit_at.contains_key(&m.xid.0), "xid {}", m.xid.0);
    }

    for n in 0..=records.len() {
        let (recovered, _) =
            SiasDb::recover_from_wal(&records[..n], StorageConfig::in_memory(), FlushPolicy::T2)
                .unwrap_or_else(|e| panic!("prefix {n}: recovery failed: {e}"));

        // Prefix consistency: exactly the transactions whose Commit
        // record lies inside the prefix are recovered as committed.
        let expected_committed: BTreeSet<u64> =
            commit_at.iter().filter(|(_, &at)| at < n).map(|(&x, _)| x).collect();
        for m in &model {
            let status = recovered.txm().clog.status(m.xid);
            let want = expected_committed.contains(&m.xid.0);
            assert_eq!(
                status == TxnStatus::Committed,
                want,
                "prefix {n}: xid {} recovered as {status:?}, expected committed={want}",
                m.xid.0
            );
        }

        // State consistency: the visible data equals a model replay of
        // the recovered transactions in commit order.
        let mut expected: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for m in &model {
            if expected_committed.contains(&m.xid.0) {
                for (k, v) in &m.writes {
                    expected.insert(*k, v.clone());
                }
            }
        }
        let got: BTreeMap<u64, Vec<u8>> = match recovered.relation("t") {
            Some(rel) => {
                let t = recovered.begin();
                let all = recovered.scan_all(&t, rel).unwrap();
                recovered.commit(t).unwrap();
                all.into_iter().map(|(k, b)| (k, b.to_vec())).collect()
            }
            None => BTreeMap::new(),
        };
        assert_eq!(got, expected, "prefix {n}: visible state diverged from model");
    }
}

#[test]
fn torn_tail_on_a_real_file_recovers_the_clean_prefix_before_it() {
    // Flip a byte inside the last durable record directly in the file:
    // a fresh scan must stop at the previous record boundary, leaving
    // the surviving prefix untouched — the torn-write contract on real
    // hardware.
    let (data_path, wal_path, _cleanup) = temp_paths("torn");
    let cfg = StorageConfig::file(&data_path)
        .with_pool_frames(256)
        .with_capacity_pages(1 << 14)
        .with_io_queue_depth(2);
    {
        let db = SiasDb::open(cfg);
        let _ = run_fixed_workload(&db);
        db.stack().wal.force().unwrap();
    }

    let wal_dev = FileDevice::standalone(&wal_path, 1 << 22).expect("reopen wal file");
    let (full, valid_bytes) = Wal::scan_device(&wal_dev);
    assert!(valid_bytes > 0);

    let page_size = sias::common::PAGE_SIZE as u64;
    let last_lba = (valid_bytes - 1) / page_size;
    let mut buf = vec![0u8; page_size as usize];
    wal_dev.read_page(last_lba, &mut buf);
    let off = ((valid_bytes - 3) % page_size) as usize;
    buf[off] ^= 0xff;
    wal_dev.write_page(last_lba, &buf, true);
    drop(wal_dev);

    // Scan through yet another cold reopen, as a restart would.
    let wal_dev = FileDevice::standalone(&wal_path, 1 << 22).expect("second reopen");
    let (truncated, _) = Wal::scan_device(&wal_dev);
    assert!(truncated.len() < full.len(), "corruption must shorten the valid prefix");
    assert_eq!(truncated[..], full[..truncated.len()], "surviving prefix is unchanged");
}
