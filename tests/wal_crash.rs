//! Table-driven WAL crash test: a fixed workload of 20 transactions is
//! logged, then the durable record stream is truncated at *every*
//! record boundary and recovered. Each prefix must recover a
//! prefix-consistent committed set — exactly the transactions whose
//! Commit record survived — and the visible state must equal a model
//! replay of those transactions, in order.

use std::collections::{BTreeMap, BTreeSet};

use sias::core::{FlushPolicy, SiasDb};
use sias::storage::{StorageConfig, Wal, WalRecord};
use sias::txn::{MvccEngine, TxnStatus};

const KEYS: u64 = 7;
const TXNS: u64 = 20;

/// What one workload transaction did, as the model sees it.
struct ModelTxn {
    xid: sias::common::Xid,
    writes: Vec<(u64, Vec<u8>)>,
    committed: bool,
}

/// Runs the fixed workload: a setup transaction inserts every key, then
/// 20 serial transactions update two keys each; every fourth aborts.
fn run_fixed_workload(db: &SiasDb) -> (sias::common::RelId, Vec<ModelTxn>) {
    let rel = db.create_relation("t");
    let mut model = Vec::new();

    let t = db.begin();
    let mut writes = Vec::new();
    for k in 0..KEYS {
        let v = format!("init {k}").into_bytes();
        db.insert(&t, rel, k, &v).unwrap();
        writes.push((k, v));
    }
    let xid = t.xid;
    db.commit(t).unwrap();
    model.push(ModelTxn { xid, writes, committed: true });

    for i in 0..TXNS {
        let t = db.begin();
        let mut writes = Vec::new();
        for (slot, key) in [(i * 2) % KEYS, (i * 2 + 1) % KEYS].into_iter().enumerate() {
            let v = format!("txn {i} slot {slot}").into_bytes();
            db.update(&t, rel, key, &v).unwrap();
            writes.push((key, v));
        }
        let xid = t.xid;
        let committed = i % 4 != 3;
        if committed {
            db.commit(t).unwrap();
        } else {
            db.abort(t);
        }
        model.push(ModelTxn { xid, writes, committed });
    }
    (rel, model)
}

#[test]
fn every_wal_prefix_recovers_a_consistent_committed_set() {
    let db = SiasDb::open(StorageConfig::in_memory());
    let (_rel, model) = run_fixed_workload(&db);
    db.stack().wal.force().unwrap();

    // The stream we truncate is the one a post-crash process would see:
    // scanned straight off the device, which must agree with the
    // in-memory durable view.
    let (records, _) = Wal::scan_device(db.stack().wal.device().as_ref());
    assert_eq!(records, db.stack().wal.durable_records().unwrap());
    assert!(records.len() > 60, "20 txns must leave a substantial log");

    // Commit-record position per xid.
    let mut commit_at: BTreeMap<u64, usize> = BTreeMap::new();
    for (i, r) in records.iter().enumerate() {
        if let WalRecord::Commit(x) = r {
            commit_at.insert(x.0, i);
        }
    }
    for m in &model {
        assert_eq!(m.committed, commit_at.contains_key(&m.xid.0), "xid {}", m.xid.0);
    }

    for n in 0..=records.len() {
        let (recovered, _) =
            SiasDb::recover_from_wal(&records[..n], StorageConfig::in_memory(), FlushPolicy::T2)
                .unwrap_or_else(|e| panic!("prefix {n}: recovery failed: {e}"));

        // Prefix consistency: exactly the transactions whose Commit
        // record lies inside the prefix are recovered as committed.
        let expected_committed: BTreeSet<u64> =
            commit_at.iter().filter(|(_, &at)| at < n).map(|(&x, _)| x).collect();
        for m in &model {
            let status = recovered.txm().clog.status(m.xid);
            let want = expected_committed.contains(&m.xid.0);
            assert_eq!(
                status == TxnStatus::Committed,
                want,
                "prefix {n}: xid {} recovered as {status:?}, expected committed={want}",
                m.xid.0
            );
        }

        // State consistency: the visible data equals a model replay of
        // the recovered transactions in commit order (serial workload:
        // commit order == execution order).
        let mut expected: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for m in &model {
            if expected_committed.contains(&m.xid.0) {
                for (k, v) in &m.writes {
                    expected.insert(*k, v.clone());
                }
            }
        }
        let got: BTreeMap<u64, Vec<u8>> = match recovered.relation("t") {
            Some(rel) => {
                let t = recovered.begin();
                let all = recovered.scan_all(&t, rel).unwrap();
                recovered.commit(t).unwrap();
                all.into_iter().map(|(k, b)| (k, b.to_vec())).collect()
            }
            None => BTreeMap::new(),
        };
        assert_eq!(got, expected, "prefix {n}: visible state diverged from model");
    }
}

#[test]
fn every_prefix_across_a_checkpoint_recovers_consistently() {
    // Same boundary sweep, but with a fuzzy checkpoint taken mid-log:
    // prefixes ending before the checkpoint record replay the full log,
    // prefixes containing it must recover identically *and* report the
    // bounded-restart accounting (replay work measured against the
    // checkpoint's redo point, strictly less than the whole log).
    type Commit = (sias::common::Xid, Vec<(u64, Vec<u8>)>);
    let db = SiasDb::open(StorageConfig::in_memory());
    let rel = db.create_relation("t");
    let mut commits: Vec<Commit> = Vec::new();

    let t = db.begin();
    let mut writes = Vec::new();
    for k in 0..KEYS {
        let v = format!("init {k}").into_bytes();
        db.insert(&t, rel, k, &v).unwrap();
        writes.push((k, v));
    }
    let xid = t.xid;
    db.commit(t).unwrap();
    commits.push((xid, writes));

    let txn_round = |db: &SiasDb, i: u64, commits: &mut Vec<_>| {
        let t = db.begin();
        let mut writes = Vec::new();
        for (slot, key) in [(i * 2) % KEYS, (i * 2 + 1) % KEYS].into_iter().enumerate() {
            let v = format!("ckpt-txn {i} slot {slot}").into_bytes();
            db.update(&t, rel, key, &v).unwrap();
            writes.push((key, v));
        }
        let xid = t.xid;
        db.commit(t).unwrap();
        commits.push((xid, writes));
    };
    for i in 0..8 {
        txn_round(&db, i, &mut commits);
    }
    let ckpt = db.checkpoint().unwrap();
    assert!(ckpt.redo_records > 0);
    for i in 8..12 {
        txn_round(&db, i, &mut commits);
    }
    db.stack().wal.force().unwrap();

    let (records, _) = Wal::scan_device(db.stack().wal.device().as_ref());
    let ckpt_at = records
        .iter()
        .position(|r| matches!(r, WalRecord::Checkpoint { .. }))
        .expect("checkpoint record must be in the log");
    assert!(ckpt_at as u64 >= ckpt.redo_records, "the record lands after its redo point");

    let mut commit_at: BTreeMap<u64, usize> = BTreeMap::new();
    for (i, r) in records.iter().enumerate() {
        if let WalRecord::Commit(x) = r {
            commit_at.insert(x.0, i);
        }
    }

    for n in 0..=records.len() {
        let (recovered, stats) =
            SiasDb::recover_from_wal(&records[..n], StorageConfig::in_memory(), FlushPolicy::T2)
                .unwrap_or_else(|e| panic!("prefix {n}: recovery failed: {e}"));

        // Bounded-restart accounting flips on exactly when the prefix
        // contains the checkpoint record.
        if n > ckpt_at {
            assert_eq!(stats.checkpoints_seen, 1, "prefix {n}");
            assert_eq!(stats.checkpoint_redo_records, ckpt.redo_records, "prefix {n}");
            assert!(
                stats.records_after_checkpoint < stats.records_scanned,
                "prefix {n}: suffix {} must be bounded below log length {}",
                stats.records_after_checkpoint,
                stats.records_scanned
            );
        } else {
            assert_eq!(stats.checkpoints_seen, 0, "prefix {n}");
            assert_eq!(stats.records_after_checkpoint, stats.records_scanned, "prefix {n}");
        }

        // Prefix consistency, exactly as in the plain sweep.
        let expected_committed: BTreeSet<u64> =
            commit_at.iter().filter(|(_, &at)| at < n).map(|(&x, _)| x).collect();
        let mut expected: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for (xid, writes) in &commits {
            if expected_committed.contains(&xid.0) {
                for (k, v) in writes {
                    expected.insert(*k, v.clone());
                }
            }
        }
        let got: BTreeMap<u64, Vec<u8>> = match recovered.relation("t") {
            Some(rel) => {
                let t = recovered.begin();
                let all = recovered.scan_all(&t, rel).unwrap();
                recovered.commit(t).unwrap();
                all.into_iter().map(|(k, b)| (k, b.to_vec())).collect()
            }
            None => BTreeMap::new(),
        };
        assert_eq!(got, expected, "prefix {n}: visible state diverged from model");
    }
}

#[test]
fn torn_tail_recovers_like_the_clean_prefix_before_it() {
    // Truncating mid-record (a torn tail write) must behave exactly like
    // stopping at the previous record boundary: scan_device finds the
    // longest checksum-valid prefix.
    let db = SiasDb::open(StorageConfig::in_memory());
    let _ = run_fixed_workload(&db);
    db.stack().wal.force().unwrap();
    let (full, valid_bytes) = Wal::scan_device(db.stack().wal.device().as_ref());
    assert!(valid_bytes > 0);

    // Corrupt the device's log tail: flip a byte inside the last record.
    let device = db.stack().wal.device();
    let page_size = sias::common::PAGE_SIZE as u64;
    let last_lba = (valid_bytes - 1) / page_size;
    let mut buf = vec![0u8; page_size as usize];
    device.read_page(last_lba, &mut buf);
    let off = ((valid_bytes - 3) % page_size) as usize;
    buf[off] ^= 0xff;
    device.write_page(last_lba, &buf, true);

    let (truncated, _) = Wal::scan_device(device.as_ref());
    assert!(truncated.len() < full.len(), "corruption must shorten the valid prefix");
    assert_eq!(truncated[..], full[..truncated.len()], "surviving prefix is unchanged");
}
