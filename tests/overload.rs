//! Overload & resource-exhaustion survival tests.
//!
//! Three concerns share this file:
//!
//! * **ENOSPC boundary sweep** — mirror of `tests/wal_crash.rs`, but the
//!   axis is *where the log device runs out of space* rather than where
//!   the durable stream is truncated: the WAL device is latched
//!   read-only after its N-th page write, for every N the workload can
//!   reach. Every run must end with typed errors only (no panic, no
//!   torn multi-page append) and recover a state byte-identical to a
//!   model replay of the commit records that made it to the device —
//!   with every *acknowledged* commit among them.
//! * **Transaction deadlines** — lock waits, commit forces and scans
//!   give up with a typed [`SiasError::DeadlineExceeded`] instead of
//!   outliving the transaction's deadline.
//! * **Admission + degraded mode** — `try_begin` sheds with a typed
//!   retry-after under pressure, and space exhaustion drives the
//!   engine to read-only (reads keep serving, writes fail fast) and
//!   back to healthy after emergency reclaim.

use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

use sias::common::SiasError;
use sias::core::{AdmissionConfig, FlushPolicy, SiasDb};
use sias::storage::{FaultConfig, HealthState, StorageConfig, Wal, WalRecord};
use sias::txn::{MvccEngine, TxnStatus};

const KEYS: u64 = 7;
const TXNS: u64 = 20;

/// Per-xid writes, acknowledged-commit xids, and whether the run saw a
/// typed resource-exhaustion error.
type WorkloadOutcome = (BTreeMap<u64, Vec<(u64, Vec<u8>)>>, BTreeSet<u64>, bool);

/// Runs the fixed wal_crash workload, tolerating resource-exhaustion
/// errors: every write failure aborts that transaction. Returns the
/// writes of every transaction (by xid) and the set of xids whose
/// commit was *acknowledged* (commit() returned Ok).
fn run_workload_tolerant(db: &SiasDb) -> WorkloadOutcome {
    let rel = db.create_relation("t");
    let mut writes_of: BTreeMap<u64, Vec<(u64, Vec<u8>)>> = BTreeMap::new();
    let mut acked: BTreeSet<u64> = BTreeSet::new();
    let mut saw_exhaustion = false;

    let mut run_txn = |updates: Vec<(u64, Vec<u8>)>, insert: bool| {
        let t = db.begin();
        let xid = t.xid;
        let mut ok = true;
        let mut writes = Vec::new();
        for (k, v) in updates {
            let r = if insert { db.insert(&t, rel, k, &v) } else { db.update(&t, rel, k, &v) };
            match r {
                Ok(()) => writes.push((k, v)),
                // A failed init transaction leaves later updates with
                // nothing to update — benign, not exhaustion.
                Err(SiasError::KeyNotFound(_)) => {
                    ok = false;
                    break;
                }
                Err(e) => {
                    assert!(
                        e.is_resource_exhausted() || matches!(e, SiasError::Device(_)),
                        "unexpected write error: {e:?}"
                    );
                    saw_exhaustion = true;
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            match db.commit(t) {
                Ok(()) => {
                    writes_of.insert(xid.0, writes);
                    acked.insert(xid.0);
                }
                Err(e) => {
                    assert!(
                        e.is_resource_exhausted() || matches!(e, SiasError::Device(_)),
                        "unexpected commit error: {e:?}"
                    );
                    saw_exhaustion = true;
                    // Outcome uncertain: the Commit record may still be
                    // durable. Record the writes so the model can apply
                    // them if recovery finds the commit.
                    writes_of.insert(xid.0, writes);
                }
            }
        } else {
            db.abort(t);
        }
    };

    run_txn((0..KEYS).map(|k| (k, format!("init {k}").into_bytes())).collect(), true);
    for i in 0..TXNS {
        let updates = [(i * 2) % KEYS, (i * 2 + 1) % KEYS]
            .into_iter()
            .enumerate()
            .map(|(slot, key)| (key, format!("txn {i} slot {slot}").into_bytes()))
            .collect();
        run_txn(updates, false);
    }
    (writes_of, acked, saw_exhaustion)
}

/// One sweep point: the WAL device fails every write from the N-th on
/// with a typed DiskFull. The run must stay panic-free and recover
/// consistently from whatever reached the device.
fn enospc_at_boundary(n: u64) -> bool {
    let mut cfg = StorageConfig::in_memory();
    cfg.faults.wal = FaultConfig { seed: 0xE05 + n, enospc_after_writes: n, ..FaultConfig::none() };
    let db = SiasDb::open(cfg);
    let (writes_of, acked, saw_exhaustion) = run_workload_tolerant(&db);
    // Flush what still can be flushed (ignore the expected failure).
    let _ = db.stack().wal.force();

    // Recover from the device image, exactly like a post-crash process.
    let (records, _) = Wal::scan_device(db.stack().wal.device().as_ref());
    let durable_commits: BTreeSet<u64> = records
        .iter()
        .filter_map(|r| match r {
            WalRecord::Commit(x) => Some(x.0),
            _ => None,
        })
        .collect();

    // Durability: every acknowledged commit reached the device.
    for xid in &acked {
        assert!(durable_commits.contains(xid), "boundary {n}: acked xid {xid} lost");
    }

    let (recovered, _) =
        SiasDb::recover_from_wal(&records, StorageConfig::in_memory(), FlushPolicy::T2)
            .unwrap_or_else(|e| panic!("boundary {n}: recovery failed: {e}"));

    // The recovered committed set is exactly the durable commit records.
    let mut expected: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    for (xid, writes) in &writes_of {
        let committed =
            recovered.txm().clog.status(sias::common::Xid(*xid)) == TxnStatus::Committed;
        assert_eq!(committed, durable_commits.contains(xid), "boundary {n}: xid {xid}");
        if committed {
            for (k, v) in writes {
                expected.insert(*k, v.clone());
            }
        }
    }

    // State consistency: visible data equals the model replay.
    let got: BTreeMap<u64, Vec<u8>> = match recovered.relation("t") {
        Some(rel) => {
            let t = recovered.begin();
            let all = recovered.scan_all(&t, rel).unwrap();
            recovered.commit(t).unwrap();
            all.into_iter().map(|(k, b)| (k, b.to_vec())).collect()
        }
        None => BTreeMap::new(),
    };
    assert_eq!(got, expected, "boundary {n}: visible state diverged from model");
    saw_exhaustion
}

#[test]
fn enospc_at_every_wal_append_boundary_recovers_consistently() {
    // N = 1 starves the log immediately; large N never fires. Sweep far
    // enough that the tail of the range completes the whole workload.
    let mut hit = 0u64;
    let mut clean = 0u64;
    for n in 1..=96 {
        if enospc_at_boundary(n) {
            hit += 1;
        } else {
            clean += 1;
        }
    }
    assert!(hit >= 20, "the sweep must actually exercise ENOSPC (hit {hit})");
    assert!(clean >= 1, "the sweep must include at least one full run (clean {clean})");
}

// ---------------------------------------------------------------------
// Deadline propagation.
// ---------------------------------------------------------------------

#[test]
fn lock_wait_respects_txn_deadline() {
    let db = SiasDb::open(StorageConfig::in_memory());
    let rel = db.create_relation("t");
    let setup = db.begin();
    db.insert(&setup, rel, 1, b"v0").unwrap();
    db.commit(setup).unwrap();

    // t1 holds the tuple lock without having appended a successor (the
    // window between Algorithm 3's lock acquisition and its append), so
    // t2 reaches the engine's lock wait instead of the first-updater
    // pre-check.
    let t1 = db.begin();
    db.txm().locks.lock(rel, sias::common::Vid(0), t1.xid).unwrap();

    // t2 must give up at its deadline, long before the lock-table
    // timeout, with the typed deadline error.
    let t2 = db.begin_with_deadline(Some(Instant::now() + Duration::from_millis(40)));
    let start = Instant::now();
    let err = db.update(&t2, rel, 1, b"blocked").unwrap_err();
    let waited = start.elapsed();
    assert!(matches!(err, SiasError::DeadlineExceeded { xid } if xid == t2.xid), "{err:?}");
    assert!(waited >= Duration::from_millis(30), "gave up too early: {waited:?}");
    assert!(waited < Duration::from_millis(800), "outlived the deadline: {waited:?}");
    db.abort(t2);
    db.abort(t1);
}

#[test]
fn expired_deadline_fails_writes_and_scans_without_waiting() {
    let db = SiasDb::open(StorageConfig::in_memory());
    let rel = db.create_relation("t");
    let setup = db.begin();
    for k in 0..50 {
        db.insert(&setup, rel, k, format!("v{k}").into_bytes().as_slice()).unwrap();
    }
    db.commit(setup).unwrap();

    let t = db.begin_with_deadline(Some(Instant::now() - Duration::from_millis(1)));
    let start = Instant::now();
    assert!(matches!(db.update(&t, rel, 1, b"late"), Err(SiasError::DeadlineExceeded { .. })));
    assert!(matches!(db.scan_all(&t, rel), Err(SiasError::DeadlineExceeded { .. })));
    // The batched access path honors it too.
    assert!(matches!(db.scan_vidmap_batched(&t, rel), Err(SiasError::DeadlineExceeded { .. })));
    assert!(start.elapsed() < Duration::from_millis(200), "expired deadline must not wait");
    db.abort(t);
}

#[test]
fn far_deadline_changes_nothing() {
    let db = SiasDb::open(StorageConfig::in_memory());
    let rel = db.create_relation("t");
    let t = db.begin_with_deadline(Some(Instant::now() + Duration::from_secs(3600)));
    db.insert(&t, rel, 1, b"x").unwrap();
    db.commit(t).unwrap();
    let t = db.begin();
    assert_eq!(db.get(&t, rel, 1).unwrap().unwrap().as_ref(), b"x");
    db.commit(t).unwrap();
}

// ---------------------------------------------------------------------
// Admission control.
// ---------------------------------------------------------------------

#[test]
fn try_begin_sheds_over_active_txn_limit_and_recovers() {
    let db = SiasDb::open(StorageConfig::in_memory());
    db.admission().set_config(AdmissionConfig {
        enabled: true,
        max_active_txns: 2,
        max_delay: Duration::from_millis(10),
        delay_tick: Duration::from_millis(1),
        ..AdmissionConfig::default()
    });

    let t1 = db.begin();
    let t2 = db.begin(); // blocking begins are delayed, never refused
    let err = db.try_begin().unwrap_err();
    match err {
        SiasError::Overloaded { retry_after_ms } => assert!(retry_after_ms >= 10),
        other => panic!("expected Overloaded, got {other:?}"),
    }
    let snap = db.metrics_snapshot();
    assert_eq!(snap.counter("core.admission.shed"), Some(1));

    // Pressure clears with the commits; the next try_begin is admitted.
    db.commit(t1).unwrap();
    db.commit(t2).unwrap();
    let t3 = db.try_begin().unwrap();
    db.commit(t3).unwrap();
    let snap = db.metrics_snapshot();
    assert!(snap.counter("core.admission.admitted").unwrap() >= 1);
}

#[test]
fn blocking_begin_is_delayed_but_admitted_under_pressure() {
    let db = SiasDb::open(StorageConfig::in_memory());
    db.admission().set_config(AdmissionConfig {
        enabled: true,
        max_active_txns: 1,
        max_delay: Duration::from_millis(20),
        delay_tick: Duration::from_millis(1),
        ..AdmissionConfig::default()
    });
    let t1 = db.begin();
    let start = Instant::now();
    let t2 = db.begin(); // over limit: parks for the budget, then admits
    assert!(start.elapsed() >= Duration::from_millis(15));
    db.commit(t2).unwrap();
    db.commit(t1).unwrap();
    let snap = db.metrics_snapshot();
    assert!(snap.counter("core.admission.delayed").unwrap() >= 1);
}

// ---------------------------------------------------------------------
// Degraded read-only mode at the engine level.
// ---------------------------------------------------------------------

#[test]
fn space_exhaustion_enters_readonly_serves_reads_and_heals_via_maintenance() {
    let mut cfg = StorageConfig::in_memory();
    // A tiny logical quota over a huge device: the log "fills" fast.
    cfg.space.wal_quota_pages = 24;
    cfg.space.low_watermark_pct = 50;
    cfg.space.hard_watermark_pct = 75;
    let db = SiasDb::open(cfg);
    let rel = db.create_relation("t");

    // Seed a row we can keep reading throughout.
    let t = db.begin();
    db.insert(&t, rel, 0, b"sentinel").unwrap();
    db.commit(t).unwrap();

    // Write until the hard watermark rejects us.
    let payload = vec![0x5A; 2048];
    let mut rejected = None;
    for i in 1..4000u64 {
        let t = db.begin();
        let r = db.insert(&t, rel, i, &payload);
        match r {
            Ok(()) => match db.commit(t) {
                Ok(()) => {}
                Err(e) => {
                    rejected = Some(e);
                    break;
                }
            },
            Err(e) => {
                db.abort(t);
                rejected = Some(e);
                break;
            }
        }
    }
    let err = rejected.expect("a 24-page quota must reject the write storm");
    assert!(
        matches!(err, SiasError::ReadOnly(_) | SiasError::DiskFull { .. }),
        "expected a typed space rejection, got {err:?}"
    );
    assert_eq!(db.stack().health.state(), HealthState::ReadOnly);

    // Reads keep serving while write-unavailable.
    let t = db.begin();
    assert_eq!(db.get(&t, rel, 0).unwrap().unwrap().as_ref(), b"sentinel");
    db.commit(t).unwrap();
    // And fresh writes fail fast, typed.
    let t = db.begin();
    let e = db.insert(&t, rel, 999_999, b"nope").unwrap_err();
    assert!(matches!(e, SiasError::ReadOnly(_)), "{e:?}");
    db.abort(t);

    // The maintenance tick notices the pressure and reclaims: vacuum +
    // checkpoint + WAL truncation, healing the health machine.
    db.maintenance(true);
    assert_eq!(db.stack().health.state(), HealthState::Healthy, "reclaim must heal");
    let snap = db.metrics_snapshot();
    assert!(snap.counter("storage.health.recovered").unwrap() >= 1);

    // Back in business.
    let t = db.begin();
    db.insert(&t, rel, 1_000_000, b"after reclaim").unwrap();
    db.commit(t).unwrap();
}
