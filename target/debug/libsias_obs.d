/root/repo/target/debug/libsias_obs.rlib: /root/repo/crates/obs/src/lib.rs /root/repo/crates/obs/src/metric.rs /root/repo/crates/obs/src/snapshot.rs
