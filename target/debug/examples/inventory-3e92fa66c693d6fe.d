/root/repo/target/debug/examples/inventory-3e92fa66c693d6fe.d: examples/inventory.rs

/root/repo/target/debug/examples/inventory-3e92fa66c693d6fe: examples/inventory.rs

examples/inventory.rs:
