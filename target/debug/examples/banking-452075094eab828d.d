/root/repo/target/debug/examples/banking-452075094eab828d.d: examples/banking.rs

/root/repo/target/debug/examples/banking-452075094eab828d: examples/banking.rs

examples/banking.rs:
