/root/repo/target/debug/examples/blocktrace-ffb67a07f44041ea.d: examples/blocktrace.rs

/root/repo/target/debug/examples/blocktrace-ffb67a07f44041ea: examples/blocktrace.rs

examples/blocktrace.rs:
