/root/repo/target/debug/examples/quickstart-1deb09be07c25440.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-1deb09be07c25440: examples/quickstart.rs

examples/quickstart.rs:
