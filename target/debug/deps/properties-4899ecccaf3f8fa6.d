/root/repo/target/debug/deps/properties-4899ecccaf3f8fa6.d: tests/properties.rs

/root/repo/target/debug/deps/properties-4899ecccaf3f8fa6: tests/properties.rs

tests/properties.rs:
