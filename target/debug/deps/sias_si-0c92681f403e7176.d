/root/repo/target/debug/deps/sias_si-0c92681f403e7176.d: crates/si-baseline/src/lib.rs crates/si-baseline/src/engine.rs crates/si-baseline/src/tuple.rs

/root/repo/target/debug/deps/libsias_si-0c92681f403e7176.rlib: crates/si-baseline/src/lib.rs crates/si-baseline/src/engine.rs crates/si-baseline/src/tuple.rs

/root/repo/target/debug/deps/libsias_si-0c92681f403e7176.rmeta: crates/si-baseline/src/lib.rs crates/si-baseline/src/engine.rs crates/si-baseline/src/tuple.rs

crates/si-baseline/src/lib.rs:
crates/si-baseline/src/engine.rs:
crates/si-baseline/src/tuple.rs:
