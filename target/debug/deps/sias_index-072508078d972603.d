/root/repo/target/debug/deps/sias_index-072508078d972603.d: crates/index/src/lib.rs crates/index/src/node.rs

/root/repo/target/debug/deps/libsias_index-072508078d972603.rlib: crates/index/src/lib.rs crates/index/src/node.rs

/root/repo/target/debug/deps/libsias_index-072508078d972603.rmeta: crates/index/src/lib.rs crates/index/src/node.rs

crates/index/src/lib.rs:
crates/index/src/node.rs:
