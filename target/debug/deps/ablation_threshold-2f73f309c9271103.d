/root/repo/target/debug/deps/ablation_threshold-2f73f309c9271103.d: crates/bench/src/bin/ablation_threshold.rs

/root/repo/target/debug/deps/ablation_threshold-2f73f309c9271103: crates/bench/src/bin/ablation_threshold.rs

crates/bench/src/bin/ablation_threshold.rs:
