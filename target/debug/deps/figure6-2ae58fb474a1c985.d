/root/repo/target/debug/deps/figure6-2ae58fb474a1c985.d: crates/bench/src/bin/figure6.rs

/root/repo/target/debug/deps/figure6-2ae58fb474a1c985: crates/bench/src/bin/figure6.rs

crates/bench/src/bin/figure6.rs:
