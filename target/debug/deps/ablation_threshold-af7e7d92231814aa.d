/root/repo/target/debug/deps/ablation_threshold-af7e7d92231814aa.d: crates/bench/src/bin/ablation_threshold.rs

/root/repo/target/debug/deps/ablation_threshold-af7e7d92231814aa: crates/bench/src/bin/ablation_threshold.rs

crates/bench/src/bin/ablation_threshold.rs:
