/root/repo/target/debug/deps/table1-a34e09ffb289699a.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-a34e09ffb289699a: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
