/root/repo/target/debug/deps/figure5-7518cd72a67b8ab9.d: crates/bench/src/bin/figure5.rs

/root/repo/target/debug/deps/figure5-7518cd72a67b8ab9: crates/bench/src/bin/figure5.rs

crates/bench/src/bin/figure5.rs:
