/root/repo/target/debug/deps/criterion-8107de16c355f440.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-8107de16c355f440.rlib: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-8107de16c355f440.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:
