/root/repo/target/debug/deps/sias_obs-98cd7e9d48576ad1.d: crates/obs/src/lib.rs crates/obs/src/metric.rs crates/obs/src/snapshot.rs

/root/repo/target/debug/deps/sias_obs-98cd7e9d48576ad1: crates/obs/src/lib.rs crates/obs/src/metric.rs crates/obs/src/snapshot.rs

crates/obs/src/lib.rs:
crates/obs/src/metric.rs:
crates/obs/src/snapshot.rs:
