/root/repo/target/debug/deps/crossbeam-f496b1bbacbb7096.d: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-f496b1bbacbb7096.rlib: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-f496b1bbacbb7096.rmeta: /tmp/stubs/crossbeam/src/lib.rs

/tmp/stubs/crossbeam/src/lib.rs:
