/root/repo/target/debug/deps/sias_bench-54eea66521f17c74.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/sias_bench-54eea66521f17c74: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
