/root/repo/target/debug/deps/bytes-4e66e34e85dd6f52.d: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-4e66e34e85dd6f52.rlib: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-4e66e34e85dd6f52.rmeta: /tmp/stubs/bytes/src/lib.rs

/tmp/stubs/bytes/src/lib.rs:
