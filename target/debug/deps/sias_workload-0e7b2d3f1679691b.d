/root/repo/target/debug/deps/sias_workload-0e7b2d3f1679691b.d: crates/workload/src/lib.rs crates/workload/src/chaos.rs crates/workload/src/check.rs crates/workload/src/config.rs crates/workload/src/driver.rs crates/workload/src/keys.rs crates/workload/src/loader.rs crates/workload/src/random.rs crates/workload/src/schema.rs crates/workload/src/txns.rs

/root/repo/target/debug/deps/sias_workload-0e7b2d3f1679691b: crates/workload/src/lib.rs crates/workload/src/chaos.rs crates/workload/src/check.rs crates/workload/src/config.rs crates/workload/src/driver.rs crates/workload/src/keys.rs crates/workload/src/loader.rs crates/workload/src/random.rs crates/workload/src/schema.rs crates/workload/src/txns.rs

crates/workload/src/lib.rs:
crates/workload/src/chaos.rs:
crates/workload/src/check.rs:
crates/workload/src/config.rs:
crates/workload/src/driver.rs:
crates/workload/src/keys.rs:
crates/workload/src/loader.rs:
crates/workload/src/random.rs:
crates/workload/src/schema.rs:
crates/workload/src/txns.rs:
