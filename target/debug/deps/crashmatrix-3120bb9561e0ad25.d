/root/repo/target/debug/deps/crashmatrix-3120bb9561e0ad25.d: crates/bench/src/bin/crashmatrix.rs

/root/repo/target/debug/deps/crashmatrix-3120bb9561e0ad25: crates/bench/src/bin/crashmatrix.rs

crates/bench/src/bin/crashmatrix.rs:
