/root/repo/target/debug/deps/sias-395a369510d5a925.d: src/lib.rs

/root/repo/target/debug/deps/libsias-395a369510d5a925.rlib: src/lib.rs

/root/repo/target/debug/deps/libsias-395a369510d5a925.rmeta: src/lib.rs

src/lib.rs:
