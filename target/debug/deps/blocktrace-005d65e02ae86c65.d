/root/repo/target/debug/deps/blocktrace-005d65e02ae86c65.d: crates/bench/src/bin/blocktrace.rs

/root/repo/target/debug/deps/blocktrace-005d65e02ae86c65: crates/bench/src/bin/blocktrace.rs

crates/bench/src/bin/blocktrace.rs:
