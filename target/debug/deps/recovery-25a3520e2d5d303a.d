/root/repo/target/debug/deps/recovery-25a3520e2d5d303a.d: tests/recovery.rs

/root/repo/target/debug/deps/recovery-25a3520e2d5d303a: tests/recovery.rs

tests/recovery.rs:
