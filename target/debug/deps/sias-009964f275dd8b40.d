/root/repo/target/debug/deps/sias-009964f275dd8b40.d: src/lib.rs

/root/repo/target/debug/deps/sias-009964f275dd8b40: src/lib.rs

src/lib.rs:
