/root/repo/target/debug/deps/sias_core-a446428400a619b2.d: crates/core/src/lib.rs crates/core/src/append.rs crates/core/src/chain.rs crates/core/src/engine.rs crates/core/src/gc.rs crates/core/src/recovery.rs crates/core/src/version.rs crates/core/src/vidmap.rs

/root/repo/target/debug/deps/sias_core-a446428400a619b2: crates/core/src/lib.rs crates/core/src/append.rs crates/core/src/chain.rs crates/core/src/engine.rs crates/core/src/gc.rs crates/core/src/recovery.rs crates/core/src/version.rs crates/core/src/vidmap.rs

crates/core/src/lib.rs:
crates/core/src/append.rs:
crates/core/src/chain.rs:
crates/core/src/engine.rs:
crates/core/src/gc.rs:
crates/core/src/recovery.rs:
crates/core/src/version.rs:
crates/core/src/vidmap.rs:
