/root/repo/target/debug/deps/serializable-9b2591f7a6b569c5.d: tests/serializable.rs

/root/repo/target/debug/deps/serializable-9b2591f7a6b569c5: tests/serializable.rs

tests/serializable.rs:
