/root/repo/target/debug/deps/sias_txn-8ea4ad25b8997519.d: crates/txn/src/lib.rs crates/txn/src/clog.rs crates/txn/src/engine.rs crates/txn/src/locks.rs crates/txn/src/manager.rs crates/txn/src/metrics.rs crates/txn/src/snapshot.rs crates/txn/src/ssi.rs

/root/repo/target/debug/deps/sias_txn-8ea4ad25b8997519: crates/txn/src/lib.rs crates/txn/src/clog.rs crates/txn/src/engine.rs crates/txn/src/locks.rs crates/txn/src/manager.rs crates/txn/src/metrics.rs crates/txn/src/snapshot.rs crates/txn/src/ssi.rs

crates/txn/src/lib.rs:
crates/txn/src/clog.rs:
crates/txn/src/engine.rs:
crates/txn/src/locks.rs:
crates/txn/src/manager.rs:
crates/txn/src/metrics.rs:
crates/txn/src/snapshot.rs:
crates/txn/src/ssi.rs:
