/root/repo/target/debug/deps/sias_bench-a4e8f9f1debdb88c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsias_bench-a4e8f9f1debdb88c.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsias_bench-a4e8f9f1debdb88c.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
