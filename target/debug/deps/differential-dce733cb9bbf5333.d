/root/repo/target/debug/deps/differential-dce733cb9bbf5333.d: tests/differential.rs

/root/repo/target/debug/deps/differential-dce733cb9bbf5333: tests/differential.rs

tests/differential.rs:
