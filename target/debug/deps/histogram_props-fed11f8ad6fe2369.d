/root/repo/target/debug/deps/histogram_props-fed11f8ad6fe2369.d: crates/obs/tests/histogram_props.rs

/root/repo/target/debug/deps/histogram_props-fed11f8ad6fe2369: crates/obs/tests/histogram_props.rs

crates/obs/tests/histogram_props.rs:
