/root/repo/target/debug/deps/blocktrace-e1eef909ff3e8d88.d: crates/bench/src/bin/blocktrace.rs

/root/repo/target/debug/deps/blocktrace-e1eef909ff3e8d88: crates/bench/src/bin/blocktrace.rs

crates/bench/src/bin/blocktrace.rs:
