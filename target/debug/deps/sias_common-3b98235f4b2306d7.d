/root/repo/target/debug/deps/sias_common-3b98235f4b2306d7.d: crates/common/src/lib.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/ids.rs crates/common/src/sim.rs

/root/repo/target/debug/deps/sias_common-3b98235f4b2306d7: crates/common/src/lib.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/ids.rs crates/common/src/sim.rs

crates/common/src/lib.rs:
crates/common/src/config.rs:
crates/common/src/error.rs:
crates/common/src/ids.rs:
crates/common/src/sim.rs:
