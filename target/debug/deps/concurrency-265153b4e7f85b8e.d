/root/repo/target/debug/deps/concurrency-265153b4e7f85b8e.d: tests/concurrency.rs

/root/repo/target/debug/deps/concurrency-265153b4e7f85b8e: tests/concurrency.rs

tests/concurrency.rs:
