/root/repo/target/debug/deps/endurance-41b5c51ea6a037c5.d: crates/bench/src/bin/endurance.rs

/root/repo/target/debug/deps/endurance-41b5c51ea6a037c5: crates/bench/src/bin/endurance.rs

crates/bench/src/bin/endurance.rs:
