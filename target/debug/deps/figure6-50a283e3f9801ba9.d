/root/repo/target/debug/deps/figure6-50a283e3f9801ba9.d: crates/bench/src/bin/figure6.rs

/root/repo/target/debug/deps/figure6-50a283e3f9801ba9: crates/bench/src/bin/figure6.rs

crates/bench/src/bin/figure6.rs:
