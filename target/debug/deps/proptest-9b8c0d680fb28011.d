/root/repo/target/debug/deps/proptest-9b8c0d680fb28011.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-9b8c0d680fb28011.rlib: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-9b8c0d680fb28011.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
