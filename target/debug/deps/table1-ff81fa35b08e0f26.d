/root/repo/target/debug/deps/table1-ff81fa35b08e0f26.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-ff81fa35b08e0f26: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
