/root/repo/target/debug/deps/wal_crash-dd822f65f5244487.d: tests/wal_crash.rs

/root/repo/target/debug/deps/wal_crash-dd822f65f5244487: tests/wal_crash.rs

tests/wal_crash.rs:
