/root/repo/target/debug/deps/sias_core-7fd9c51152d6aa88.d: crates/core/src/lib.rs crates/core/src/append.rs crates/core/src/chain.rs crates/core/src/engine.rs crates/core/src/gc.rs crates/core/src/recovery.rs crates/core/src/version.rs crates/core/src/vidmap.rs

/root/repo/target/debug/deps/libsias_core-7fd9c51152d6aa88.rlib: crates/core/src/lib.rs crates/core/src/append.rs crates/core/src/chain.rs crates/core/src/engine.rs crates/core/src/gc.rs crates/core/src/recovery.rs crates/core/src/version.rs crates/core/src/vidmap.rs

/root/repo/target/debug/deps/libsias_core-7fd9c51152d6aa88.rmeta: crates/core/src/lib.rs crates/core/src/append.rs crates/core/src/chain.rs crates/core/src/engine.rs crates/core/src/gc.rs crates/core/src/recovery.rs crates/core/src/version.rs crates/core/src/vidmap.rs

crates/core/src/lib.rs:
crates/core/src/append.rs:
crates/core/src/chain.rs:
crates/core/src/engine.rs:
crates/core/src/gc.rs:
crates/core/src/recovery.rs:
crates/core/src/version.rs:
crates/core/src/vidmap.rs:
