/root/repo/target/debug/deps/concurrency-c495ac1c977182ee.d: crates/obs/tests/concurrency.rs

/root/repo/target/debug/deps/concurrency-c495ac1c977182ee: crates/obs/tests/concurrency.rs

crates/obs/tests/concurrency.rs:
