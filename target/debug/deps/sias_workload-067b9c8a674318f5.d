/root/repo/target/debug/deps/sias_workload-067b9c8a674318f5.d: crates/workload/src/lib.rs crates/workload/src/chaos.rs crates/workload/src/check.rs crates/workload/src/config.rs crates/workload/src/driver.rs crates/workload/src/keys.rs crates/workload/src/loader.rs crates/workload/src/random.rs crates/workload/src/schema.rs crates/workload/src/txns.rs

/root/repo/target/debug/deps/libsias_workload-067b9c8a674318f5.rlib: crates/workload/src/lib.rs crates/workload/src/chaos.rs crates/workload/src/check.rs crates/workload/src/config.rs crates/workload/src/driver.rs crates/workload/src/keys.rs crates/workload/src/loader.rs crates/workload/src/random.rs crates/workload/src/schema.rs crates/workload/src/txns.rs

/root/repo/target/debug/deps/libsias_workload-067b9c8a674318f5.rmeta: crates/workload/src/lib.rs crates/workload/src/chaos.rs crates/workload/src/check.rs crates/workload/src/config.rs crates/workload/src/driver.rs crates/workload/src/keys.rs crates/workload/src/loader.rs crates/workload/src/random.rs crates/workload/src/schema.rs crates/workload/src/txns.rs

crates/workload/src/lib.rs:
crates/workload/src/chaos.rs:
crates/workload/src/check.rs:
crates/workload/src/config.rs:
crates/workload/src/driver.rs:
crates/workload/src/keys.rs:
crates/workload/src/loader.rs:
crates/workload/src/random.rs:
crates/workload/src/schema.rs:
crates/workload/src/txns.rs:
