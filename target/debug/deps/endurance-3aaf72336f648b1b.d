/root/repo/target/debug/deps/endurance-3aaf72336f648b1b.d: crates/bench/src/bin/endurance.rs

/root/repo/target/debug/deps/endurance-3aaf72336f648b1b: crates/bench/src/bin/endurance.rs

crates/bench/src/bin/endurance.rs:
