/root/repo/target/debug/deps/table2-085226d4e5683810.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-085226d4e5683810: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
