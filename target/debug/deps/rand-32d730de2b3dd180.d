/root/repo/target/debug/deps/rand-32d730de2b3dd180.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-32d730de2b3dd180.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-32d730de2b3dd180.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
