/root/repo/target/debug/deps/sias_obs-8f09f129790c8166.d: crates/obs/src/lib.rs crates/obs/src/metric.rs crates/obs/src/snapshot.rs

/root/repo/target/debug/deps/libsias_obs-8f09f129790c8166.rlib: crates/obs/src/lib.rs crates/obs/src/metric.rs crates/obs/src/snapshot.rs

/root/repo/target/debug/deps/libsias_obs-8f09f129790c8166.rmeta: crates/obs/src/lib.rs crates/obs/src/metric.rs crates/obs/src/snapshot.rs

crates/obs/src/lib.rs:
crates/obs/src/metric.rs:
crates/obs/src/snapshot.rs:
