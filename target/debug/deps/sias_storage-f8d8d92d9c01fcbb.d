/root/repo/target/debug/deps/sias_storage-f8d8d92d9c01fcbb.d: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/device/mod.rs crates/storage/src/device/faulty.rs crates/storage/src/device/flash.rs crates/storage/src/device/hdd.rs crates/storage/src/device/mem.rs crates/storage/src/device/raid.rs crates/storage/src/fsm.rs crates/storage/src/page.rs crates/storage/src/stack.rs crates/storage/src/tablespace.rs crates/storage/src/trace.rs crates/storage/src/wal.rs

/root/repo/target/debug/deps/sias_storage-f8d8d92d9c01fcbb: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/device/mod.rs crates/storage/src/device/faulty.rs crates/storage/src/device/flash.rs crates/storage/src/device/hdd.rs crates/storage/src/device/mem.rs crates/storage/src/device/raid.rs crates/storage/src/fsm.rs crates/storage/src/page.rs crates/storage/src/stack.rs crates/storage/src/tablespace.rs crates/storage/src/trace.rs crates/storage/src/wal.rs

crates/storage/src/lib.rs:
crates/storage/src/buffer.rs:
crates/storage/src/device/mod.rs:
crates/storage/src/device/faulty.rs:
crates/storage/src/device/flash.rs:
crates/storage/src/device/hdd.rs:
crates/storage/src/device/mem.rs:
crates/storage/src/device/raid.rs:
crates/storage/src/fsm.rs:
crates/storage/src/page.rs:
crates/storage/src/stack.rs:
crates/storage/src/tablespace.rs:
crates/storage/src/trace.rs:
crates/storage/src/wal.rs:
