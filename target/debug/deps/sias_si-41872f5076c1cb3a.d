/root/repo/target/debug/deps/sias_si-41872f5076c1cb3a.d: crates/si-baseline/src/lib.rs crates/si-baseline/src/engine.rs crates/si-baseline/src/tuple.rs

/root/repo/target/debug/deps/sias_si-41872f5076c1cb3a: crates/si-baseline/src/lib.rs crates/si-baseline/src/engine.rs crates/si-baseline/src/tuple.rs

crates/si-baseline/src/lib.rs:
crates/si-baseline/src/engine.rs:
crates/si-baseline/src/tuple.rs:
