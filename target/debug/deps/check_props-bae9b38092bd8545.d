/root/repo/target/debug/deps/check_props-bae9b38092bd8545.d: crates/workload/tests/check_props.rs

/root/repo/target/debug/deps/check_props-bae9b38092bd8545: crates/workload/tests/check_props.rs

crates/workload/tests/check_props.rs:
