/root/repo/target/debug/deps/sias_index-94662f2111a8bc41.d: crates/index/src/lib.rs crates/index/src/node.rs

/root/repo/target/debug/deps/sias_index-94662f2111a8bc41: crates/index/src/lib.rs crates/index/src/node.rs

crates/index/src/lib.rs:
crates/index/src/node.rs:
