/root/repo/target/debug/deps/parking_lot-c32fa4750f770db3.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-c32fa4750f770db3.rlib: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-c32fa4750f770db3.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:
