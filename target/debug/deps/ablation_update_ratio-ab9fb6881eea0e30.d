/root/repo/target/debug/deps/ablation_update_ratio-ab9fb6881eea0e30.d: crates/bench/src/bin/ablation_update_ratio.rs

/root/repo/target/debug/deps/ablation_update_ratio-ab9fb6881eea0e30: crates/bench/src/bin/ablation_update_ratio.rs

crates/bench/src/bin/ablation_update_ratio.rs:
