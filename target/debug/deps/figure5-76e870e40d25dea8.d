/root/repo/target/debug/deps/figure5-76e870e40d25dea8.d: crates/bench/src/bin/figure5.rs

/root/repo/target/debug/deps/figure5-76e870e40d25dea8: crates/bench/src/bin/figure5.rs

crates/bench/src/bin/figure5.rs:
