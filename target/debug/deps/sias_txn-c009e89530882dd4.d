/root/repo/target/debug/deps/sias_txn-c009e89530882dd4.d: crates/txn/src/lib.rs crates/txn/src/clog.rs crates/txn/src/engine.rs crates/txn/src/locks.rs crates/txn/src/manager.rs crates/txn/src/metrics.rs crates/txn/src/snapshot.rs crates/txn/src/ssi.rs

/root/repo/target/debug/deps/libsias_txn-c009e89530882dd4.rlib: crates/txn/src/lib.rs crates/txn/src/clog.rs crates/txn/src/engine.rs crates/txn/src/locks.rs crates/txn/src/manager.rs crates/txn/src/metrics.rs crates/txn/src/snapshot.rs crates/txn/src/ssi.rs

/root/repo/target/debug/deps/libsias_txn-c009e89530882dd4.rmeta: crates/txn/src/lib.rs crates/txn/src/clog.rs crates/txn/src/engine.rs crates/txn/src/locks.rs crates/txn/src/manager.rs crates/txn/src/metrics.rs crates/txn/src/snapshot.rs crates/txn/src/ssi.rs

crates/txn/src/lib.rs:
crates/txn/src/clog.rs:
crates/txn/src/engine.rs:
crates/txn/src/locks.rs:
crates/txn/src/manager.rs:
crates/txn/src/metrics.rs:
crates/txn/src/snapshot.rs:
crates/txn/src/ssi.rs:
