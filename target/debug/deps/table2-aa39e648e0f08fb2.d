/root/repo/target/debug/deps/table2-aa39e648e0f08fb2.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-aa39e648e0f08fb2: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
