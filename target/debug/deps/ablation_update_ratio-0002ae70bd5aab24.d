/root/repo/target/debug/deps/ablation_update_ratio-0002ae70bd5aab24.d: crates/bench/src/bin/ablation_update_ratio.rs

/root/repo/target/debug/deps/ablation_update_ratio-0002ae70bd5aab24: crates/bench/src/bin/ablation_update_ratio.rs

crates/bench/src/bin/ablation_update_ratio.rs:
