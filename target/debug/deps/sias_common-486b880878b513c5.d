/root/repo/target/debug/deps/sias_common-486b880878b513c5.d: crates/common/src/lib.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/ids.rs crates/common/src/sim.rs

/root/repo/target/debug/deps/libsias_common-486b880878b513c5.rlib: crates/common/src/lib.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/ids.rs crates/common/src/sim.rs

/root/repo/target/debug/deps/libsias_common-486b880878b513c5.rmeta: crates/common/src/lib.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/ids.rs crates/common/src/sim.rs

crates/common/src/lib.rs:
crates/common/src/config.rs:
crates/common/src/error.rs:
crates/common/src/ids.rs:
crates/common/src/sim.rs:
