/root/repo/target/debug/deps/tpcc_end_to_end-3c731c4a56d809d3.d: tests/tpcc_end_to_end.rs

/root/repo/target/debug/deps/tpcc_end_to_end-3c731c4a56d809d3: tests/tpcc_end_to_end.rs

tests/tpcc_end_to_end.rs:
