/root/repo/target/release/deps/sias_si-a80bda2996f1d430.d: crates/si-baseline/src/lib.rs crates/si-baseline/src/engine.rs crates/si-baseline/src/tuple.rs

/root/repo/target/release/deps/libsias_si-a80bda2996f1d430.rlib: crates/si-baseline/src/lib.rs crates/si-baseline/src/engine.rs crates/si-baseline/src/tuple.rs

/root/repo/target/release/deps/libsias_si-a80bda2996f1d430.rmeta: crates/si-baseline/src/lib.rs crates/si-baseline/src/engine.rs crates/si-baseline/src/tuple.rs

crates/si-baseline/src/lib.rs:
crates/si-baseline/src/engine.rs:
crates/si-baseline/src/tuple.rs:
