/root/repo/target/release/deps/sias_bench-081893b4908421a4.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsias_bench-081893b4908421a4.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsias_bench-081893b4908421a4.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
