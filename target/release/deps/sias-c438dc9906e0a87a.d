/root/repo/target/release/deps/sias-c438dc9906e0a87a.d: src/lib.rs

/root/repo/target/release/deps/libsias-c438dc9906e0a87a.rlib: src/lib.rs

/root/repo/target/release/deps/libsias-c438dc9906e0a87a.rmeta: src/lib.rs

src/lib.rs:
