/root/repo/target/release/deps/bytes-f9ab574c23ad46ee.d: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-f9ab574c23ad46ee.rlib: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-f9ab574c23ad46ee.rmeta: /tmp/stubs/bytes/src/lib.rs

/tmp/stubs/bytes/src/lib.rs:
