/root/repo/target/release/deps/rand-fc769210d11a0c3e.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-fc769210d11a0c3e.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-fc769210d11a0c3e.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
