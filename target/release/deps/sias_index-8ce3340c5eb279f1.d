/root/repo/target/release/deps/sias_index-8ce3340c5eb279f1.d: crates/index/src/lib.rs crates/index/src/node.rs

/root/repo/target/release/deps/libsias_index-8ce3340c5eb279f1.rlib: crates/index/src/lib.rs crates/index/src/node.rs

/root/repo/target/release/deps/libsias_index-8ce3340c5eb279f1.rmeta: crates/index/src/lib.rs crates/index/src/node.rs

crates/index/src/lib.rs:
crates/index/src/node.rs:
