/root/repo/target/release/deps/sias_txn-6ae7dab251ee73d3.d: crates/txn/src/lib.rs crates/txn/src/clog.rs crates/txn/src/engine.rs crates/txn/src/locks.rs crates/txn/src/manager.rs crates/txn/src/metrics.rs crates/txn/src/snapshot.rs crates/txn/src/ssi.rs

/root/repo/target/release/deps/libsias_txn-6ae7dab251ee73d3.rlib: crates/txn/src/lib.rs crates/txn/src/clog.rs crates/txn/src/engine.rs crates/txn/src/locks.rs crates/txn/src/manager.rs crates/txn/src/metrics.rs crates/txn/src/snapshot.rs crates/txn/src/ssi.rs

/root/repo/target/release/deps/libsias_txn-6ae7dab251ee73d3.rmeta: crates/txn/src/lib.rs crates/txn/src/clog.rs crates/txn/src/engine.rs crates/txn/src/locks.rs crates/txn/src/manager.rs crates/txn/src/metrics.rs crates/txn/src/snapshot.rs crates/txn/src/ssi.rs

crates/txn/src/lib.rs:
crates/txn/src/clog.rs:
crates/txn/src/engine.rs:
crates/txn/src/locks.rs:
crates/txn/src/manager.rs:
crates/txn/src/metrics.rs:
crates/txn/src/snapshot.rs:
crates/txn/src/ssi.rs:
