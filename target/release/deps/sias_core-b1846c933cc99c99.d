/root/repo/target/release/deps/sias_core-b1846c933cc99c99.d: crates/core/src/lib.rs crates/core/src/append.rs crates/core/src/chain.rs crates/core/src/engine.rs crates/core/src/gc.rs crates/core/src/recovery.rs crates/core/src/version.rs crates/core/src/vidmap.rs

/root/repo/target/release/deps/libsias_core-b1846c933cc99c99.rlib: crates/core/src/lib.rs crates/core/src/append.rs crates/core/src/chain.rs crates/core/src/engine.rs crates/core/src/gc.rs crates/core/src/recovery.rs crates/core/src/version.rs crates/core/src/vidmap.rs

/root/repo/target/release/deps/libsias_core-b1846c933cc99c99.rmeta: crates/core/src/lib.rs crates/core/src/append.rs crates/core/src/chain.rs crates/core/src/engine.rs crates/core/src/gc.rs crates/core/src/recovery.rs crates/core/src/version.rs crates/core/src/vidmap.rs

crates/core/src/lib.rs:
crates/core/src/append.rs:
crates/core/src/chain.rs:
crates/core/src/engine.rs:
crates/core/src/gc.rs:
crates/core/src/recovery.rs:
crates/core/src/version.rs:
crates/core/src/vidmap.rs:
