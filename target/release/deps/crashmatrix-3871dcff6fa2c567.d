/root/repo/target/release/deps/crashmatrix-3871dcff6fa2c567.d: crates/bench/src/bin/crashmatrix.rs

/root/repo/target/release/deps/crashmatrix-3871dcff6fa2c567: crates/bench/src/bin/crashmatrix.rs

crates/bench/src/bin/crashmatrix.rs:
