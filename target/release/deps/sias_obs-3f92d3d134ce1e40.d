/root/repo/target/release/deps/sias_obs-3f92d3d134ce1e40.d: crates/obs/src/lib.rs crates/obs/src/metric.rs crates/obs/src/snapshot.rs

/root/repo/target/release/deps/libsias_obs-3f92d3d134ce1e40.rlib: crates/obs/src/lib.rs crates/obs/src/metric.rs crates/obs/src/snapshot.rs

/root/repo/target/release/deps/libsias_obs-3f92d3d134ce1e40.rmeta: crates/obs/src/lib.rs crates/obs/src/metric.rs crates/obs/src/snapshot.rs

crates/obs/src/lib.rs:
crates/obs/src/metric.rs:
crates/obs/src/snapshot.rs:
