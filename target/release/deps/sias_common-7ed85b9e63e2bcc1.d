/root/repo/target/release/deps/sias_common-7ed85b9e63e2bcc1.d: crates/common/src/lib.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/ids.rs crates/common/src/sim.rs

/root/repo/target/release/deps/libsias_common-7ed85b9e63e2bcc1.rlib: crates/common/src/lib.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/ids.rs crates/common/src/sim.rs

/root/repo/target/release/deps/libsias_common-7ed85b9e63e2bcc1.rmeta: crates/common/src/lib.rs crates/common/src/config.rs crates/common/src/error.rs crates/common/src/ids.rs crates/common/src/sim.rs

crates/common/src/lib.rs:
crates/common/src/config.rs:
crates/common/src/error.rs:
crates/common/src/ids.rs:
crates/common/src/sim.rs:
