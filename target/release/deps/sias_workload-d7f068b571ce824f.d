/root/repo/target/release/deps/sias_workload-d7f068b571ce824f.d: crates/workload/src/lib.rs crates/workload/src/chaos.rs crates/workload/src/check.rs crates/workload/src/config.rs crates/workload/src/driver.rs crates/workload/src/keys.rs crates/workload/src/loader.rs crates/workload/src/random.rs crates/workload/src/schema.rs crates/workload/src/txns.rs

/root/repo/target/release/deps/libsias_workload-d7f068b571ce824f.rlib: crates/workload/src/lib.rs crates/workload/src/chaos.rs crates/workload/src/check.rs crates/workload/src/config.rs crates/workload/src/driver.rs crates/workload/src/keys.rs crates/workload/src/loader.rs crates/workload/src/random.rs crates/workload/src/schema.rs crates/workload/src/txns.rs

/root/repo/target/release/deps/libsias_workload-d7f068b571ce824f.rmeta: crates/workload/src/lib.rs crates/workload/src/chaos.rs crates/workload/src/check.rs crates/workload/src/config.rs crates/workload/src/driver.rs crates/workload/src/keys.rs crates/workload/src/loader.rs crates/workload/src/random.rs crates/workload/src/schema.rs crates/workload/src/txns.rs

crates/workload/src/lib.rs:
crates/workload/src/chaos.rs:
crates/workload/src/check.rs:
crates/workload/src/config.rs:
crates/workload/src/driver.rs:
crates/workload/src/keys.rs:
crates/workload/src/loader.rs:
crates/workload/src/random.rs:
crates/workload/src/schema.rs:
crates/workload/src/txns.rs:
